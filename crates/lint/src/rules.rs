//! The rule catalogue: D1/D2/D3 (determinism) and C1/C2 (correctness).
//!
//! Every rule works on the token stream of [`crate::lexer`], so nothing in a
//! comment or string literal can trip a rule, and every finding carries an
//! exact line:col span. Rules are scoped by path (see the `*_scope`
//! predicates) and skip `#[cfg(test)]` / `#[test]` regions where noted.

use crate::lexer::{Token, TokenKind};
use std::collections::BTreeSet;

/// A single diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id: D1, D2, D3, C1, C2 (token-level, this module), P1, M1, U1,
    /// F1, E1 (AST/call-graph level, [`crate::sem`]) — or W1 (malformed
    /// waiver) / A1 (stale allowlist entry), produced by the driver.
    pub rule: &'static str,
    /// Path relative to the scanned root, forward slashes.
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
    /// The trimmed source line, for humans and for allowlist `contains`.
    pub snippet: String,
    /// Set by the driver when a waiver or allowlist entry suppresses this.
    pub suppressed: Option<Suppression>,
    /// For propagated findings (P1): the `(file, line)` of the root cause —
    /// the panic site a public fn transitively reaches. A waiver naming the
    /// rule *on the origin line* suppresses every finding propagated from
    /// it, so one waiver at the panic site quiets the whole call tree.
    pub origin: Option<(String, u32)>,
}

/// How a finding was suppressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suppression {
    Waiver,
    Allowlist,
}

/// Human-readable one-liner for each rule id (used by `stats` and docs).
pub fn rule_summary(rule: &str) -> &'static str {
    match rule {
        "D1" => "hash container (HashMap/HashSet) in determinism-critical crate",
        "D2" => "wall-clock time or ad-hoc thread outside bench/routing::exec",
        "D3" => "float ==/!= comparison in solver/sim code",
        "C1" => "unwrap()/expect()/panic! in library crate outside #[cfg(test)]",
        "C2" => "narrowing `as` cast in htsim",
        "P1" => "public fn transitively reaches a panic site",
        "M1" => "wildcard `_ =>` arm in a match over a workspace enum",
        "U1" => "unit-unsafe arithmetic (raw constructor or inline conversion constant)",
        "F1" => "partial_cmp-based float ordering (use total_cmp)",
        "E1" => "parse error (file not analyzable by the semantic rules)",
        "T1" => "telemetry fn not observation-pure w.r.t. simulator state",
        "S1" => "parallel closure captures/mutates shared state or calls effectful code",
        "O1" => "float reduction over parallel-produced data not provably index-ordered",
        "Q1" => "unstable sort without a provably total, duplicate-free key",
        "Y1" => "Relaxed load/store on a publication atomic (guards non-atomic shared data)",
        "Y2" => "RMW-derived value flows into indexing/ordering/float accumulation in a parallel closure",
        "Y3" => "spawned closure calls workspace code that mutates a shared capture",
        "Y4" => "unsafe block without a `// SAFETY:` comment",
        "W1" => "malformed pnet-tidy waiver comment",
        "A1" => "stale allowlist entry (matches no finding)",
        _ => "unknown rule",
    }
}

/// All enforceable rule ids (the ones a waiver may name).
pub const RULE_IDS: &[&str] = &[
    "D1", "D2", "D3", "C1", "C2", "P1", "M1", "U1", "F1", "E1", "T1", "S1", "O1", "Q1", "Y1", "Y2",
    "Y3", "Y4",
];

fn d1_scope(p: &str) -> bool {
    [
        "crates/routing/src/",
        "crates/flowsim/src/",
        "crates/htsim/src/",
        "crates/topology/src/",
        "crates/planner/src/",
    ]
    .iter()
    .any(|pre| p.starts_with(pre))
}

fn d2_scope(p: &str) -> bool {
    !p.starts_with("crates/bench/") && p != "crates/routing/src/exec.rs"
}

fn d3_scope(p: &str) -> bool {
    [
        "crates/routing/src/",
        "crates/flowsim/src/",
        "crates/htsim/src/",
    ]
    .iter()
    .any(|pre| p.starts_with(pre))
}

fn c1_scope(p: &str) -> bool {
    [
        "crates/topology/src/",
        "crates/routing/src/",
        "crates/flowsim/src/",
        "crates/htsim/src/",
        "crates/workloads/src/",
        "crates/core/src/",
        "crates/planner/src/",
    ]
    .iter()
    .any(|pre| p.starts_with(pre))
}

fn c2_scope(p: &str) -> bool {
    p.starts_with("crates/htsim/src/")
}

/// Per-token mask: true when the token sits inside a `#[cfg(test)]` item or a
/// `#[test]` function. Attributes apply to the next brace-delimited item.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "#" && tokens.get(i + 1).is_some_and(|t| t.text == "[") {
            // Find the matching `]` of the attribute.
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut is_test_attr = false;
            let mut negated = false;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if tokens[j].kind == TokenKind::Ident {
                    if tokens[j].text == "not" {
                        negated = true;
                    }
                    if tokens[j].text == "test" && !negated {
                        is_test_attr = true;
                    }
                }
                j += 1;
            }
            if is_test_attr && j < tokens.len() {
                // Mark from the attribute through the end of the annotated
                // item: the block closing the first `{` after the attribute.
                let mut k = j + 1;
                let mut brace = 0i32;
                let mut started = false;
                while k < tokens.len() {
                    match tokens[k].text.as_str() {
                        "{" => {
                            brace += 1;
                            started = true;
                        }
                        "}" => brace -= 1,
                        ";" if !started => break, // `#[cfg(test)] mod x;`
                        _ => {}
                    }
                    if started && brace == 0 {
                        break;
                    }
                    k += 1;
                }
                let end = k.min(tokens.len() - 1);
                for m in mask.iter_mut().take(end + 1).skip(i) {
                    *m = true;
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Context handed to each rule.
pub struct FileCtx<'a> {
    pub rel_path: &'a str,
    pub tokens: &'a [Token],
    pub in_test: &'a [bool],
    pub lines: &'a [&'a str],
}

impl FileCtx<'_> {
    fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    fn finding(&self, rule: &'static str, tok: &Token, message: String) -> Finding {
        Finding {
            rule,
            file: self.rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
            snippet: self.snippet(tok.line),
            suppressed: None,
            origin: None,
        }
    }
}

/// Run every scoped rule over one file.
pub fn check_file(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    if d1_scope(ctx.rel_path) {
        rule_d1(ctx, &mut out);
    }
    if d2_scope(ctx.rel_path) {
        rule_d2(ctx, &mut out);
    }
    if d3_scope(ctx.rel_path) {
        rule_d3(ctx, &mut out);
    }
    if c1_scope(ctx.rel_path) {
        rule_c1(ctx, &mut out);
    }
    if c2_scope(ctx.rel_path) {
        rule_c2(ctx, &mut out);
    }
    rule_y4(ctx, &mut out);
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Y4: every `unsafe { .. }` block must carry a `// SAFETY:` comment — on
/// the block's own line, or in the contiguous run of comment/attribute
/// lines immediately above it. `unsafe fn`/`unsafe impl`/`unsafe trait`
/// items are out of scope (the obligation sits at their *call/impl* sites);
/// the rule applies everywhere, tests included — an undocumented unsafe
/// block in a test is still an undocumented proof obligation.
fn rule_y4(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "unsafe" {
            continue;
        }
        if ctx.tokens.get(i + 1).is_none_or(|n| n.text != "{") {
            continue;
        }
        let mut ln = t.line as usize - 1; // 0-based index of the unsafe line
        let mut documented = ctx.lines.get(ln).is_some_and(|l| l.contains("SAFETY:"));
        while !documented && ln > 0 {
            ln -= 1;
            let l = ctx.lines[ln].trim_start();
            if l.starts_with("//") {
                if l.contains("SAFETY:") {
                    documented = true;
                }
            } else if !(l.starts_with("#[") || l.starts_with("#!")) {
                break; // code or blank line ends the comment run
            }
        }
        if !documented {
            out.push(
                ctx.finding(
                    "Y4",
                    t,
                    "unsafe block without a `// SAFETY:` comment: state the invariant \
                     that makes this sound on the preceding line"
                        .to_string(),
                ),
            );
        }
    }
}

/// D1: no `HashMap`/`HashSet` in determinism-critical crates. Iteration
/// order over hash containers is nondeterministic across processes, and any
/// hash container in these crates is one refactor away from being iterated —
/// so the rule bans the type outright: use `BTreeMap`/`BTreeSet`, sort
/// before iterating, or waive with a reason.
fn rule_d1(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "HashMap" || t.text == "HashSet" {
            out.push(ctx.finding(
                "D1",
                t,
                format!(
                    "{} in a determinism-critical crate: iteration order is \
                     nondeterministic; use BTreeMap/BTreeSet or sort before iterating",
                    t.text
                ),
            ));
        }
    }
}

/// D2: no `std::time::{Instant, SystemTime}` and no `thread::spawn` outside
/// `crates/bench` and `routing::exec`. Wall-clock reads and ad-hoc threads
/// are the two ways nondeterminism has historically crept into route
/// computation; all parallelism must flow through `routing::exec::Parallelism`
/// (order-preserving) and all timing through the bench crate. Applies to
/// test code too — a test that spawns raw threads or reads the clock is a
/// flaky test.
fn rule_d2(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "Instant" || t.text == "SystemTime" {
            out.push(ctx.finding(
                "D2",
                t,
                format!(
                    "{}: wall-clock time outside crates/bench makes runs \
                     irreproducible; use sim time or move timing to the bench crate",
                    t.text
                ),
            ));
        }
        if t.text == "spawn"
            && i >= 2
            && ctx.tokens[i - 1].text == "::"
            && ctx.tokens[i - 2].text == "thread"
        {
            out.push(
                ctx.finding(
                    "D2",
                    t,
                    "thread::spawn outside routing::exec: ad-hoc threads bypass the \
                 order-preserving Parallelism primitive"
                        .to_string(),
                ),
            );
        }
    }
}

/// Integer type names (used to shield casts/annotations from float taint).
fn is_int_type(s: &str) -> bool {
    matches!(
        s,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
            | "bool"
    )
}

fn is_float_type(s: &str) -> bool {
    s == "f32" || s == "f64"
}

/// Bracket depth bookkeeping for the taint scans: openers return +1, closers
/// -1. `<`/`>` are ambiguous (comparison vs generics) and deliberately not
/// tracked — type-position scans treat them via local heuristics instead.
fn bracket_delta(t: &str) -> i32 {
    match t {
        "(" | "[" | "{" => 1,
        ")" | "]" | "}" => -1,
        _ => 0,
    }
}

/// Lexical float-taint analysis for D3: the set of identifiers that
/// plausibly hold floats. Seeds: `ident: <type containing f32/f64>`
/// annotations (params, lets, struct fields). Propagation: `let`/`for`/
/// `if let`/`while let`/`match` bindings whose right-hand side mentions a
/// tainted identifier or a float literal. A parallel "integer" set records
/// `ident: <int type>` annotations and `as <int>` casts, and wins over the
/// float set on conflict, which keeps index arithmetic derived from float
/// expressions (e.g. `(p * n as f64) as usize`) out of the taint.
///
/// Run this per `fn` region (see [`fn_regions`]), not per file: taint is
/// name-based, and a float `remaining` in one function must not taint an
/// integer `remaining` in another.
pub(crate) fn float_taint(tokens: &[Token]) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut floats: BTreeSet<String> = BTreeSet::new();
    let mut ints: BTreeSet<String> = BTreeSet::new();

    // Does a token slice mention a float literal or a tainted ident?
    let mentions_float = |range: &[Token], floats: &BTreeSet<String>| -> bool {
        range.iter().any(|t| {
            t.kind == TokenKind::Float
                || (t.kind == TokenKind::Ident
                    && (is_float_type(&t.text) || floats.contains(&t.text)))
        })
    };
    // Trailing `as <int type>` shields an expression from tainting.
    let ends_in_int_cast = |range: &[Token]| -> bool {
        range.len() >= 2
            && range[range.len() - 2].text == "as"
            && is_int_type(&range[range.len() - 1].text)
    };
    let idents_of = |range: &[Token]| -> Vec<String> {
        range
            .iter()
            .filter(|t| {
                t.kind == TokenKind::Ident
                    && !matches!(
                        t.text.as_str(),
                        "mut" | "ref" | "Some" | "Ok" | "Err" | "None" | "let" | "box" | "_"
                    )
            })
            .map(|t| t.text.clone())
            .collect()
    };
    // Scan forward from `from` to the first depth-0 occurrence of a stop
    // token; returns the exclusive end index.
    let scan_until = |tokens: &[Token], from: usize, stops: &[&str]| -> usize {
        let mut depth = 0i32;
        let mut j = from;
        while j < tokens.len() {
            let t = &tokens[j].text;
            if depth == 0 && stops.contains(&t.as_str()) {
                return j;
            }
            depth += bracket_delta(t);
            if depth < 0 {
                return j;
            }
            j += 1;
        }
        j
    };

    for _pass in 0..2 {
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            // (a) `ident : Type` annotations (params, lets, struct fields).
            if t.kind == TokenKind::Ident
                && tokens.get(i + 1).is_some_and(|n| n.text == ":")
                && tokens.get(i + 2).is_some_and(|n| n.text != ":")
                && (i == 0 || tokens[i - 1].text != ":")
            {
                let end = scan_until(tokens, i + 2, &[",", ")", ";", "=", "{", "}"]);
                let ty = &tokens[i + 2..end.min(tokens.len())];
                if ty.iter().any(|x| is_float_type(&x.text)) {
                    floats.insert(t.text.clone());
                } else if ty.first().is_some_and(|x| is_int_type(&x.text)) {
                    ints.insert(t.text.clone());
                }
            }
            // (b) `let PAT = RHS ;`
            if t.kind == TokenKind::Ident && t.text == "let" {
                let eq = scan_until(tokens, i + 1, &["=", ";"]);
                if eq < tokens.len() && tokens[eq].text == "=" {
                    let end = scan_until(tokens, eq + 1, &[";", "{"]);
                    let rhs = &tokens[eq + 1..end.min(tokens.len())];
                    let pat = &tokens[i + 1..eq];
                    // Strip a `: Type` annotation from the pattern side.
                    let pat_end = pat.iter().position(|x| x.text == ":").unwrap_or(pat.len());
                    if mentions_float(rhs, &floats) && !ends_in_int_cast(rhs) {
                        for id in idents_of(&pat[..pat_end]) {
                            floats.insert(id);
                        }
                    } else if ends_in_int_cast(rhs) {
                        for id in idents_of(&pat[..pat_end]) {
                            ints.insert(id);
                        }
                    }
                }
            }
            // (c) `for PAT in RHS {`
            if t.kind == TokenKind::Ident && t.text == "for" {
                if let Some(inpos) = (i + 1..tokens.len().min(i + 16))
                    .find(|&j| tokens[j].kind == TokenKind::Ident && tokens[j].text == "in")
                {
                    let end = scan_until(tokens, inpos + 1, &["{"]);
                    let rhs = &tokens[inpos + 1..end.min(tokens.len())];
                    if mentions_float(rhs, &floats) {
                        for id in idents_of(&tokens[i + 1..inpos]) {
                            floats.insert(id);
                        }
                    }
                }
            }
            // (d) `match RHS {` with tainted scrutinee: taint arm-pattern
            // (and guard) identifiers inside the match block.
            if t.kind == TokenKind::Ident && t.text == "match" {
                let open = scan_until(tokens, i + 1, &["{"]);
                let rhs = &tokens[i + 1..open.min(tokens.len())];
                if open < tokens.len() && mentions_float(rhs, &floats) {
                    // Walk arms: idents before each `=>` at relative depth 1.
                    let mut depth = 0i32;
                    let mut j = open;
                    let mut arm: Vec<&Token> = Vec::new();
                    while j < tokens.len() {
                        let tx = &tokens[j].text;
                        depth += bracket_delta(tx);
                        if depth == 0 && tx == "}" {
                            break;
                        }
                        if depth == 1 {
                            if tx == "=>" {
                                for id in
                                    idents_of(&arm.iter().map(|t| (*t).clone()).collect::<Vec<_>>())
                                {
                                    floats.insert(id);
                                }
                                arm.clear();
                            } else if tx == "," {
                                arm.clear();
                            } else if tx != "{" {
                                arm.push(&tokens[j]);
                            }
                        }
                        j += 1;
                    }
                }
            }
            // (e) `if let PAT = RHS` / `while let PAT = RHS`
            if t.kind == TokenKind::Ident
                && (t.text == "if" || t.text == "while")
                && tokens.get(i + 1).is_some_and(|n| n.text == "let")
            {
                let eq = scan_until(tokens, i + 2, &["=", "{"]);
                if eq < tokens.len() && tokens[eq].text == "=" {
                    let end = scan_until(tokens, eq + 1, &["{"]);
                    let rhs = &tokens[eq + 1..end.min(tokens.len())];
                    if mentions_float(rhs, &floats) {
                        for id in idents_of(&tokens[i + 2..eq]) {
                            floats.insert(id);
                        }
                    }
                }
            }
            i += 1;
        }
    }
    (floats, ints)
}

/// Token ranges `[start, end]` of `fn` items: the `fn` keyword through the
/// closing brace of the body. The signature is included so parameter type
/// annotations seed the taint. Bodyless `fn` declarations (traits) are
/// skipped. Nested functions produce nested ranges; callers pick the
/// innermost range containing a site.
pub(crate) fn fn_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident || tokens[i].text != "fn" {
            continue;
        }
        // The body `{` is the first one outside the parameter/return
        // brackets; `;` at depth 0 means a bodyless declaration.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut body = None;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    body = Some(j);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(body) = body else { continue };
        let mut brace = 0i32;
        let mut k = body;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        out.push((i, k.min(tokens.len() - 1)));
    }
    out
}

/// Tokens that terminate an operand window around `==`/`!=`.
fn is_operand_boundary(t: &str) -> bool {
    matches!(
        t,
        "," | ";"
            | "{"
            | "}"
            | "&&"
            | "||"
            | "="
            | "=="
            | "!="
            | "<="
            | ">="
            | "=>"
            | "->"
            | "if"
            | "else"
            | "while"
            | "match"
            | "return"
            | "let"
            | "for"
            | "in"
    )
}

/// D3: no float `==`/`!=` in solver/sim code. Exact float equality is
/// almost always a latent bug in iterative solvers (accumulated error) and,
/// where it *is* intended (bit-exact determinism checks), deserves an
/// explicit waiver naming that intent.
fn rule_d3(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let regions = fn_regions(ctx.tokens);
    let region_taints: Vec<(BTreeSet<String>, BTreeSet<String>)> = regions
        .iter()
        .map(|&(s, e)| float_taint(&ctx.tokens[s..=e]))
        .collect();
    // Item-level taint (struct fields, consts): tokens outside every fn.
    let mut in_fn = vec![false; ctx.tokens.len()];
    for &(s, e) in &regions {
        for m in in_fn.iter_mut().take(e + 1).skip(s) {
            *m = true;
        }
    }
    let item_tokens: Vec<Token> = ctx
        .tokens
        .iter()
        .zip(&in_fn)
        .filter(|&(_, &inside)| !inside)
        .map(|(t, _)| t.clone())
        .collect();
    let (item_floats, item_ints) = float_taint(&item_tokens);
    // Innermost fn region containing token index `i`, if any.
    let innermost = |i: usize| -> Option<usize> {
        let mut best: Option<usize> = None;
        for (r, &(s, e)) in regions.iter().enumerate() {
            if s <= i && i <= e && best.is_none_or(|b| e - s < regions[b].1 - regions[b].0) {
                best = Some(r);
            }
        }
        best
    };
    let is_float_operand = |t: &Token, region: Option<usize>| -> bool {
        if t.kind == TokenKind::Float {
            return true;
        }
        if t.kind != TokenKind::Ident {
            return false;
        }
        if is_float_type(&t.text) {
            return true;
        }
        let (floats, ints) = match region {
            Some(r) => (&region_taints[r].0, &region_taints[r].1),
            None => (&item_floats, &item_ints),
        };
        (floats.contains(&t.text) || item_floats.contains(&t.text))
            && !ints.contains(&t.text)
            && !item_ints.contains(&t.text)
    };
    for (i, t) in ctx.tokens.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokenKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let region = innermost(i);
        let mut hit = false;
        // Left window.
        let mut depth = 0i32;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let tx = &ctx.tokens[j].text;
            depth -= bracket_delta(tx); // walking left: closers open
            if depth < 0 || (depth == 0 && is_operand_boundary(tx)) {
                break;
            }
            if depth >= 0 && is_float_operand(&ctx.tokens[j], region) {
                hit = true;
                break;
            }
        }
        // Right window.
        if !hit {
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < ctx.tokens.len() {
                let tx = &ctx.tokens[j].text;
                if depth == 0 && is_operand_boundary(tx) {
                    break;
                }
                depth += bracket_delta(tx);
                if depth < 0 {
                    break;
                }
                if is_float_operand(&ctx.tokens[j], region) {
                    hit = true;
                    break;
                }
                j += 1;
            }
        }
        if hit {
            out.push(ctx.finding(
                "D3",
                t,
                format!(
                    "float `{}` comparison: exact float equality in solver/sim \
                     code; compare with a tolerance, use total_cmp, or waive \
                     stating why bit-equality is intended",
                    t.text
                ),
            ));
        }
    }
}

/// C1: no `unwrap()` / `panic!` / non-invariant `expect()` in library
/// crates outside `#[cfg(test)]`. The sanctioned escape hatch is
/// `expect("invariant: ...")` naming the violated invariant — anything else
/// needs a typed error or a waiver.
fn rule_c1(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "unwrap"
                if i >= 1
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).is_some_and(|n| n.text == "(")
                    && toks.get(i + 2).is_some_and(|n| n.text == ")") =>
            {
                out.push(
                    ctx.finding(
                        "C1",
                        t,
                        "unwrap() in a library crate: return a typed error or use \
                     expect(\"invariant: ...\") naming the violated invariant"
                            .to_string(),
                    ),
                );
            }
            "expect"
                if i >= 1
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).is_some_and(|n| n.text == "(") =>
            {
                let arg = toks.get(i + 2);
                let sanctioned = arg.is_some_and(|a| {
                    a.kind == TokenKind::Str && a.text.trim_start().starts_with("invariant")
                });
                if !sanctioned {
                    out.push(
                        ctx.finding(
                            "C1",
                            t,
                            "expect() without an `invariant: ...` message in a library \
                         crate: name the violated invariant or return a typed error"
                                .to_string(),
                        ),
                    );
                }
            }
            "panic" if toks.get(i + 1).is_some_and(|n| n.text == "!") => {
                out.push(
                    ctx.finding(
                        "C1",
                        t,
                        "panic! in a library crate: return a typed error or waive \
                     with the invariant that makes this unreachable"
                            .to_string(),
                    ),
                );
            }
            _ => {}
        }
    }
}

/// C2: no narrowing `as` casts in htsim. Time (picoseconds), byte counts
/// and ids are u64/u32 arithmetic; a narrowing `as` silently truncates at
/// scale. Use `try_from` + `expect("invariant: ...")`, or widen the type.
/// (`as usize`/`as u64`/`as f64` are widening on every supported target and
/// stay legal.)
fn rule_c2(ctx: &FileCtx, out: &mut Vec<Finding>) {
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
    for (i, t) in ctx.tokens.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokenKind::Ident || t.text != "as" {
            continue;
        }
        if let Some(n) = ctx.tokens.get(i + 1) {
            if n.kind == TokenKind::Ident && NARROW.contains(&n.text.as_str()) {
                out.push(ctx.finding(
                    "C2",
                    t,
                    format!(
                        "narrowing cast `as {}` on sim arithmetic: silently \
                         truncates; use {}::try_from(..).expect(\"invariant: ...\") \
                         or widen the type",
                        n.text, n.text
                    ),
                ));
            }
        }
    }
}
