//! `pnet-tidy` — repo-specific determinism & correctness lints.
//!
//! A dependency-free, two-phase pass over the workspace's `.rs` files:
//!
//! * **Lexical phase** (per file): [`lexer`] turns the file into tokens +
//!   comments and [`rules`] runs the token-level catalogue (D1/D2/D3/C1/C2).
//! * **Semantic phase** (whole workspace): [`ast`] parses every file's
//!   tokens into a lightweight AST, [`sem`] builds a symbol table and an
//!   intra-workspace call graph, and runs the semantic catalogue
//!   (P1/M1/U1/F1, plus E1 for files the parser cannot structure).
//!
//! This module drives both phases, applies inline waivers globally (a P1
//! waiver placed on a panic site suppresses every finding propagated from
//! it, even in other files) and the checked-in allowlist, and reports what
//! is left. See DESIGN.md §"Static analysis & determinism contract" for the
//! catalogue and the rationale.

pub mod allowlist;
pub mod ast;
pub mod baseline;
mod conc;
mod effects;
pub mod lexer;
pub mod rules;
pub mod sem;

use allowlist::{parse_allowlist, parse_waivers, AllowEntry, Waiver};
use rules::{check_file, test_mask, FileCtx, Finding, Suppression};
use sem::SemFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never scanned (build output, vendored deps, VCS, and the
/// linter's own rule-violating fixtures).
const EXCLUDED_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Everything one scan produced. `findings` contains *all* findings,
/// including suppressed ones (for `list`/`stats`); gate on [`ScanReport::active`].
pub struct ScanReport {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl ScanReport {
    /// Findings that fail the `check` gate: everything not suppressed by a
    /// waiver or allowlist entry, including W1 (malformed waiver) and A1
    /// (stale allowlist entry) meta-findings.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }
}

/// Lint a set of `(relative path, source)` files as one workspace: lexical
/// rules per file, semantic rules across all files, then global waiver
/// application. A waiver on a code line suppresses matching findings on that
/// line; a waiver on a comment-only line suppresses matching findings on the
/// next line; a P1 waiver additionally suppresses P1 findings *propagated
/// from* its target line anywhere in the workspace. Waivers that end up
/// suppressing nothing are themselves reported (W1) — dead waivers rot just
/// like stale allowlist entries.
pub fn lint_sources(files: &[(String, String)]) -> Vec<Finding> {
    let lexed: Vec<lexer::Lexed> = files.iter().map(|(_, src)| lexer::lex(src)).collect();
    let asts: Vec<ast::Ast> = lexed.iter().map(|l| ast::parse(&l.tokens)).collect();
    let masks: Vec<Vec<bool>> = lexed.iter().map(|l| test_mask(&l.tokens)).collect();
    let lines: Vec<Vec<&str>> = files.iter().map(|(_, src)| src.lines().collect()).collect();

    let mut findings: Vec<Finding> = Vec::new();
    // (file index, waiver, 1-based target line)
    let mut waivers: Vec<(usize, Waiver, u32)> = Vec::new();

    let sem_files: Vec<SemFile> = files
        .iter()
        .enumerate()
        .map(|(i, (rel, _))| SemFile {
            rel_path: rel,
            tokens: &lexed[i].tokens,
            in_test: &masks[i],
            lines: &lines[i],
            ast: &asts[i],
        })
        .collect();

    for (i, (rel, _)) in files.iter().enumerate() {
        let ctx = FileCtx {
            rel_path: rel,
            tokens: &lexed[i].tokens,
            in_test: &masks[i],
            lines: &lines[i],
        };
        findings.extend(check_file(&ctx));
        findings.extend(sem::parse_error_findings(&sem_files[i]));
        let (ws, malformed) = parse_waivers(&lexed[i].comments, rel, &lines[i]);
        findings.extend(malformed);
        for w in ws {
            // Comment-only line => the waiver targets the line below it.
            let own_line_is_code = lines[i].get(w.line as usize - 1).is_some_and(|l| {
                let t = l.trim_start();
                !t.is_empty() && !t.starts_with("//") && !t.starts_with("/*")
            });
            let target = if own_line_is_code { w.line } else { w.line + 1 };
            waivers.push((i, w, target));
        }
    }

    findings.extend(sem::check_workspace(&sem_files));

    // Global waiver pass: line match in the waiver's own file, or origin
    // match anywhere (P1 findings carry the panic site they propagate from).
    for (i, w, target) in &waivers {
        let wfile = files[*i].0.as_str();
        let mut used = false;
        for f in findings.iter_mut() {
            if f.suppressed.is_some() || !w.rules.iter().any(|r| r == f.rule) {
                continue;
            }
            let line_hit = f.file == wfile && f.line == *target;
            let origin_hit = f
                .origin
                .as_ref()
                .is_some_and(|(of, ol)| of == wfile && ol == target);
            if line_hit || origin_hit {
                f.suppressed = Some(Suppression::Waiver);
                used = true;
            }
        }
        if !used {
            findings.push(Finding {
                rule: "W1",
                file: wfile.to_string(),
                line: w.line,
                col: 1,
                message: format!(
                    "waiver for {} suppresses nothing on line {target}; remove it",
                    w.rules.join(", ")
                ),
                snippet: lines[*i]
                    .get(w.line as usize - 1)
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default(),
                suppressed: None,
                origin: None,
            });
        }
    }

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    findings
}

/// Lint a single file's contents (unit-test convenience wrapper around
/// [`lint_sources`]; semantic rules see a one-file workspace).
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    lint_sources(&[(rel_path.to_string(), src.to_string())])
}

/// Render every workspace function's inferred effect signature as one
/// S-expression per line (the `pnet-tidy effects` mode and the snapshot-test
/// surface for the inference itself).
pub fn effects_dump(files: &[(String, String)]) -> String {
    let lexed: Vec<lexer::Lexed> = files.iter().map(|(_, src)| lexer::lex(src)).collect();
    let asts: Vec<ast::Ast> = lexed.iter().map(|l| ast::parse(&l.tokens)).collect();
    let masks: Vec<Vec<bool>> = lexed.iter().map(|l| test_mask(&l.tokens)).collect();
    let lines: Vec<Vec<&str>> = files.iter().map(|(_, src)| src.lines().collect()).collect();
    let sem_files: Vec<SemFile> = files
        .iter()
        .enumerate()
        .map(|(i, (rel, _))| SemFile {
            rel_path: rel,
            tokens: &lexed[i].tokens,
            in_test: &masks[i],
            lines: &lines[i],
            ast: &asts[i],
        })
        .collect();
    let ws = sem::build_workspace(&sem_files);
    let fx = effects::infer(&ws, &sem_files);
    effects::dump(&ws, &sem_files, &fx)
}

/// [`effects_dump`] over a workspace tree on disk (same file walk as
/// [`scan`]).
pub fn effects_dump_root(root: &Path) -> io::Result<String> {
    let paths = collect_rs_files(root)?;
    let mut files: Vec<(String, String)> = Vec::with_capacity(paths.len());
    for path in &paths {
        files.push((rel_str(root, path), fs::read_to_string(path)?));
    }
    Ok(effects_dump(&files))
}

/// Recursively collect `.rs` files under `root`, as sorted root-relative
/// forward-slash paths. Sorted so the scan (and every diagnostic ordering
/// downstream) is deterministic regardless of filesystem enumeration order.
fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            if path.is_dir() {
                if !EXCLUDED_DIRS.contains(&name.as_str()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_str(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Scan a workspace tree and apply the allowlist. A missing allowlist file
/// is treated as empty (fresh checkouts lint clean without one).
pub fn scan(root: &Path, allowlist_path: &Path) -> io::Result<ScanReport> {
    let (entries, mut allow_findings) = match fs::read_to_string(allowlist_path) {
        Ok(src) => parse_allowlist(&src, &rel_str(root, allowlist_path)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => (Vec::new(), Vec::new()),
        Err(e) => return Err(e),
    };
    let paths = collect_rs_files(root)?;
    let files_scanned = paths.len();
    let mut files: Vec<(String, String)> = Vec::with_capacity(paths.len());
    for path in &paths {
        files.push((rel_str(root, path), fs::read_to_string(path)?));
    }
    let mut findings = lint_sources(&files);
    // Allowlist pass: each entry must suppress at least one live finding,
    // otherwise it is stale and reported under A1.
    let mut used = vec![false; entries.len()];
    for f in findings.iter_mut() {
        if f.suppressed.is_some() {
            continue;
        }
        if let Some(idx) = entries.iter().position(|e| e.matches(f)) {
            f.suppressed = Some(Suppression::Allowlist);
            used[idx] = true;
        }
    }
    for (e, used) in entries.iter().zip(&used) {
        if !used {
            allow_findings.push(stale_entry_finding(e, &rel_str(root, allowlist_path)));
        }
    }
    findings.append(&mut allow_findings);
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Ok(ScanReport {
        findings,
        files_scanned,
    })
}

fn stale_entry_finding(e: &AllowEntry, allowlist_rel: &str) -> Finding {
    Finding {
        rule: "A1",
        file: allowlist_rel.to_string(),
        line: e.line,
        col: 1,
        message: format!(
            "stale allowlist entry: rule {} in `{}`{} matches no finding; remove it",
            e.rule,
            e.file,
            if e.contains.is_empty() {
                String::new()
            } else {
                format!(" (contains `{}`)", e.contains)
            }
        ),
        snippet: String::new(),
        suppressed: None,
        origin: None,
    }
}

/// Walk up from `start` to the first directory whose `Cargo.toml` declares
/// `[workspace]` — lets the binary run from any subdirectory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_on_same_line_suppresses() {
        let src = "fn f(m: &std::collections::HashMap<u32, u32>) {} // pnet-tidy: allow(D1) -- lookup only, never iterated\n";
        let fs = lint_source("crates/routing/src/x.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "D1");
        assert_eq!(fs[0].suppressed, Some(Suppression::Waiver));
    }

    #[test]
    fn waiver_on_line_above_suppresses() {
        let src = "// pnet-tidy: allow(D1) -- lookup only\nuse std::collections::HashMap;\n";
        let fs = lint_source("crates/routing/src/x.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].suppressed, Some(Suppression::Waiver));
    }

    #[test]
    fn unused_waiver_is_reported() {
        let src = "// pnet-tidy: allow(D1) -- nothing here\nfn f() {}\n";
        let fs = lint_source("crates/routing/src/x.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "W1");
    }

    #[test]
    fn malformed_waiver_is_reported() {
        let src = "// pnet-tidy: allow(D1)\nuse std::collections::HashMap;\n";
        let fs = lint_source("crates/routing/src/x.rs", src);
        assert!(fs.iter().any(|f| f.rule == "W1"));
        assert!(fs.iter().any(|f| f.rule == "D1" && f.suppressed.is_none()));
    }

    #[test]
    fn waiver_only_covers_named_rules() {
        let src = "fn g(m: &std::collections::BTreeMap<u32, u32>, k: u32) -> u32 {\n    *m.get(&k).unwrap() // pnet-tidy: allow(D1) -- wrong rule\n}\n";
        let fs = lint_source("crates/htsim/src/x.rs", src);
        // The C1 finding stays active; the D1 waiver is unused => W1.
        assert!(fs.iter().any(|f| f.rule == "C1" && f.suppressed.is_none()));
        assert!(fs.iter().any(|f| f.rule == "W1"));
    }

    #[test]
    fn p1_origin_waiver_suppresses_cross_file() {
        // The panic site lives in helper.rs with a P1 waiver; the pub fn in
        // api.rs that transitively reaches it must come out suppressed, and
        // the waiver must count as used (no W1).
        let files = vec![
            (
                "crates/routing/src/helper.rs".to_string(),
                "pub(crate) fn pick(v: &[u32]) -> u32 {\n    // pnet-tidy: allow(C1, P1) -- prototype: callers guarantee non-empty\n    *v.first().unwrap()\n}\n".to_string(),
            ),
            (
                "crates/routing/src/api.rs".to_string(),
                "pub fn best(v: &[u32]) -> u32 { pick(v) }\n".to_string(),
            ),
        ];
        let fs = lint_sources(&files);
        let p1: Vec<_> = fs.iter().filter(|f| f.rule == "P1").collect();
        assert_eq!(p1.len(), 1, "{fs:?}");
        assert_eq!(p1[0].suppressed, Some(Suppression::Waiver));
        assert_eq!(p1[0].file, "crates/routing/src/api.rs");
        assert!(fs.iter().all(|f| f.rule != "W1"), "{fs:?}");
        // The C1 at the site is waived too.
        assert!(fs
            .iter()
            .all(|f| f.rule != "C1" || f.suppressed == Some(Suppression::Waiver)));
    }

    #[test]
    fn parse_error_becomes_e1() {
        let fs = lint_source("crates/routing/src/x.rs", "fn broken( {\n");
        assert!(fs.iter().any(|f| f.rule == "E1"), "{fs:?}");
    }

    #[test]
    fn allowlist_roundtrip_and_stale_detection() {
        let src = r#"
[[allow]]
rule = "D1"
file = "crates/routing/src/x.rs"
contains = "HashMap"
reason = "lookup only"

[[allow]]
rule = "C1"
file = "crates/nowhere/src/y.rs"
reason = "never matches"
"#;
        let (entries, errs) = parse_allowlist(src, "lint-allowlist.toml");
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(entries.len(), 2);
        let f = Finding {
            rule: "D1",
            file: "crates/routing/src/x.rs".to_string(),
            line: 3,
            col: 5,
            message: String::new(),
            snippet: "use std::collections::HashMap;".to_string(),
            suppressed: None,
            origin: None,
        };
        assert!(entries[0].matches(&f));
        assert!(!entries[1].matches(&f));
    }

    #[test]
    fn allowlist_rejects_unknown_rule_and_missing_reason() {
        let src = "[[allow]]\nrule = \"Z9\"\nfile = \"x.rs\"\n";
        let (_, errs) = parse_allowlist(src, "lint-allowlist.toml");
        assert_eq!(errs.len(), 2); // unknown rule + missing reason
        assert!(errs.iter().all(|f| f.rule == "A1"));
    }
}
