//! A lightweight Rust AST and recursive-descent parser over [`crate::lexer`]
//! tokens — the second phase of `pnet-tidy`'s two-phase analysis.
//!
//! Design goals, in order:
//!
//! 1. **Never get lost.** The parser must consume every workspace `.rs` file
//!    without structural errors (`tests/parser_corpus.rs` pins that claim).
//!    Unknown constructs degrade to [`ExprKind::Opaque`] / [`ItemKind::Other`]
//!    instead of failing; parse errors are reserved for genuine breakage
//!    (unbalanced delimiters, truncated items) and surface as `E1` findings.
//! 2. **Capture what the semantic rules need.** Items, `fn` signatures and
//!    bodies, `match`/`if`/`for`/`while` structure, method-call chains, paths,
//!    literals with suffixes, patterns (deep enough to see enum-variant paths
//!    inside tuple/struct patterns), and `use` aliases for
//!    name-resolution-lite.
//! 3. **Stay dependency-free.** No `syn`, no `proc-macro2`; macro invocation
//!    bodies are kept as raw token ranges (rules do not see inside macros —
//!    a documented limitation).
//!
//! Every node carries `[lo, hi]` token indices into the caller's token
//! slice, so rules report exact line:col spans.

use crate::lexer::{Token, TokenKind};

/// A structural parse failure (reported as rule `E1` by the driver).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// Parse result for one file.
#[derive(Debug, Default)]
pub struct Ast {
    pub items: Vec<Item>,
    pub errors: Vec<ParseError>,
}

/// One item, with its token span.
#[derive(Debug)]
pub struct Item {
    pub lo: usize,
    pub hi: usize,
    pub kind: ItemKind,
}

#[derive(Debug)]
pub enum ItemKind {
    Fn(FnItem),
    Struct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<String>,
    },
    Impl(ImplItem),
    Trait {
        name: String,
        items: Vec<Item>,
    },
    Mod {
        name: String,
        items: Option<Vec<Item>>,
    },
    Use {
        bindings: Vec<UseBinding>,
    },
    Const {
        name: String,
        init: Option<Expr>,
    },
    Static {
        name: String,
        init: Option<Expr>,
    },
    TypeAlias {
        name: String,
    },
    MacroDef {
        name: String,
    },
    MacroCall {
        path: Vec<String>,
    },
    ExternCrate {
        name: String,
    },
    Other,
}

/// `impl [Trait for] Type { items }` — names are the last path segment at
/// angle-depth 0 (`impl fmt::Display for SimTime` ⇒ trait `Display`, type
/// `SimTime`).
#[derive(Debug)]
pub struct ImplItem {
    pub self_ty: String,
    pub of_trait: Option<String>,
    pub items: Vec<Item>,
}

/// One flattened `use` binding: the full path and the name it binds locally
/// (`use a::b::{c as d}` ⇒ path `[a, b, c]`, alias `d`; globs get alias `*`).
#[derive(Debug, Clone)]
pub struct UseBinding {
    pub path: Vec<String>,
    pub alias: String,
}

/// A type reference: the identifiers that appear in it plus its token span.
/// Types are deliberately kept as ident bags — enough for unit/float seeding
/// without a full type grammar.
#[derive(Debug, Clone, Default)]
pub struct TyRef {
    pub idents: Vec<String>,
    pub lo: usize,
    pub hi: usize,
}

#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    /// Token index of the name (span anchor for P1 findings).
    pub name_tok: usize,
    pub is_pub: bool,
    pub params: Vec<Param>,
    pub ret: Option<TyRef>,
    /// `None` for bodyless trait-method declarations.
    pub body: Option<Block>,
}

#[derive(Debug)]
pub struct Param {
    /// Binding name when the pattern is a plain binding (`x: u32`); `self`
    /// for receivers; `None` for destructuring patterns.
    pub name: Option<String>,
    pub ty: Option<TyRef>,
    /// `true` for a `&mut self` (or `mut self`) receiver — the one mutability
    /// fact a [`TyRef`] ident bag cannot carry (non-receiver params record
    /// their `mut` inside `ty.idents`). Effect inference reads this.
    pub ref_mut: bool,
}

#[derive(Debug)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub lo: usize,
    pub hi: usize,
}

#[derive(Debug)]
pub enum Stmt {
    Let {
        pat: Pat,
        ty: Option<TyRef>,
        init: Option<Expr>,
        /// `let ... else { ... }` diverging block.
        els: Option<Block>,
    },
    Item(Item),
    /// Expression statement (with or without a trailing `;`).
    Expr(Expr),
    Empty,
}

#[derive(Debug)]
pub struct Expr {
    pub lo: usize,
    pub hi: usize,
    pub kind: ExprKind,
}

#[derive(Debug)]
pub enum ExprKind {
    /// Literal; the token carries kind (Int/Float/Str) and text with suffix.
    Lit,
    /// `true`/`false`.
    BoolLit,
    Path(Vec<String>),
    MethodCall {
        recv: Box<Expr>,
        name: String,
        /// Token index of the method name (span anchor).
        name_tok: usize,
        args: Vec<Expr>,
    },
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
    },
    Field {
        recv: Box<Expr>,
        name: String,
    },
    Index {
        recv: Box<Expr>,
        index: Box<Expr>,
    },
    Binary {
        op: String,
        op_tok: usize,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Unary {
        op: String,
        expr: Box<Expr>,
    },
    Ref {
        /// `&mut` (vs `&`) — a mutable borrow of a captured place is exactly
        /// what the parallel-safety rule has to see.
        is_mut: bool,
        expr: Box<Expr>,
    },
    Try {
        expr: Box<Expr>,
    },
    Cast {
        expr: Box<Expr>,
        ty: TyRef,
    },
    Match {
        scrutinee: Box<Expr>,
        arms: Vec<Arm>,
    },
    If {
        cond: Box<Expr>,
        then: Block,
        els: Option<Box<Expr>>,
    },
    While {
        cond: Box<Expr>,
        body: Block,
    },
    For {
        pat: Pat,
        iter: Box<Expr>,
        body: Block,
    },
    Loop {
        body: Block,
    },
    Block(Block),
    Closure {
        /// Parameter patterns (`|i|`, `|(a, b)|`, `|mut x: u32|`). Effect and
        /// capture analysis needs them to tell closure-locals from captures.
        params: Vec<Pat>,
        body: Box<Expr>,
    },
    /// `path!(...)` / `path![...]` / `path! {...}`; the body is the raw
    /// token range between (and excluding) the delimiters.
    Macro {
        path: Vec<String>,
        body_lo: usize,
        body_hi: usize,
    },
    StructLit {
        path: Vec<String>,
        fields: Vec<(String, Option<Expr>)>,
        rest: Option<Box<Expr>>,
    },
    Tuple(Vec<Expr>),
    Array(Vec<Expr>),
    Range {
        start: Option<Box<Expr>>,
        end: Option<Box<Expr>>,
    },
    Return(Option<Box<Expr>>),
    Break(Option<Box<Expr>>),
    Continue,
    /// `let PAT = EXPR` in `if let` / `while let` conditions.
    CondLet {
        pat: Pat,
        expr: Box<Expr>,
    },
    Opaque,
}

#[derive(Debug)]
pub struct Arm {
    pub pat: Pat,
    pub guard: Option<Expr>,
    pub body: Expr,
}

#[derive(Debug)]
pub struct Pat {
    pub lo: usize,
    pub hi: usize,
    pub kind: PatKind,
}

#[derive(Debug)]
pub enum PatKind {
    Wild,
    /// Unit path pattern (`EventKind::Arrival`, `None`).
    Path(Vec<String>),
    /// `Path(sub, ...)`.
    TupleStruct(Vec<String>, Vec<Pat>),
    /// `Path { field: pat, .. }`.
    Struct(Vec<String>, Vec<Pat>),
    /// Lowercase single-segment binding, optionally `name @ sub`.
    Binding(String, Option<Box<Pat>>),
    Lit,
    Tuple(Vec<Pat>),
    Slice(Vec<Pat>),
    Ref(Box<Pat>),
    Or(Vec<Pat>),
    Range,
    Rest,
    Opaque,
}

/// Parse a token stream into an [`Ast`].
pub fn parse(tokens: &[Token]) -> Ast {
    let mut p = Parser {
        t: tokens,
        i: 0,
        errors: Vec::new(),
    };
    let mut items = Vec::new();
    p.skip_inner_attrs();
    while !p.eof() {
        let before = p.i;
        items.push(p.parse_item());
        if p.i == before {
            // Safety valve: an item parser that consumed nothing would loop
            // forever. Record and skip the offending token.
            p.error("unexpected token at item position");
            p.i += 1;
        }
    }
    Ast {
        items,
        errors: p.errors,
    }
}

/// Keywords that begin an item in statement position.
fn is_item_keyword(s: &str) -> bool {
    matches!(
        s,
        "fn" | "use"
            | "struct"
            | "enum"
            | "impl"
            | "trait"
            | "mod"
            | "static"
            | "macro_rules"
            | "extern"
            | "pub"
    )
}

struct Parser<'a> {
    t: &'a [Token],
    i: usize,
    errors: Vec<ParseError>,
}

impl<'a> Parser<'a> {
    fn eof(&self) -> bool {
        self.i >= self.t.len()
    }

    fn tok(&self, k: usize) -> Option<&'a Token> {
        self.t.get(self.i + k)
    }

    fn txt(&self, k: usize) -> &'a str {
        self.tok(k).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn kind(&self, k: usize) -> Option<TokenKind> {
        self.tok(k).map(|t| t.kind)
    }

    /// Token text for structural matching: literal tokens (string / numeric)
    /// never match. Without this, a string literal `"*"` (whose token text is
    /// the *contents*, `*`) would parse as a deref operator, and a `"("`
    /// inside a macro body would desynchronise `skip_balanced`.
    fn op_txt(&self, k: usize) -> &'a str {
        match self.kind(k) {
            Some(TokenKind::Punct) | Some(TokenKind::Ident) | Some(TokenKind::Lifetime) => {
                self.txt(k)
            }
            _ => "",
        }
    }

    fn at(&self, s: &str) -> bool {
        self.op_txt(0) == s
    }

    fn bump(&mut self) -> usize {
        let i = self.i;
        if self.i < self.t.len() {
            self.i += 1;
        }
        i
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.at(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn error(&mut self, message: &str) {
        let (line, col) = self
            .tok(0)
            .or_else(|| self.t.last())
            .map(|t| (t.line, t.col))
            .unwrap_or((1, 1));
        self.errors.push(ParseError {
            line,
            col,
            message: format!("{message} (near `{}`)", self.txt(0)),
        });
    }

    fn expect(&mut self, s: &str, what: &str) -> bool {
        if self.eat(s) {
            true
        } else {
            self.error(&format!("expected `{s}` {what}"));
            false
        }
    }

    /// Last consumed token index (for `hi` spans).
    fn prev(&self) -> usize {
        self.i.saturating_sub(1)
    }

    // ------------------------------------------------------------------
    // Trivia
    // ------------------------------------------------------------------

    /// Skip `#[...]` outer attributes.
    fn skip_outer_attrs(&mut self) {
        while self.at("#") && self.op_txt(1) == "[" {
            self.bump(); // #
            self.skip_balanced("[", "]");
        }
    }

    /// Skip `#![...]` inner attributes.
    fn skip_inner_attrs(&mut self) {
        while self.at("#") && self.op_txt(1) == "!" && self.op_txt(2) == "[" {
            self.bump(); // #
            self.bump(); // !
            self.skip_balanced("[", "]");
        }
    }

    /// Skip a balanced `open ... close` region starting at `open`.
    fn skip_balanced(&mut self, open: &str, close: &str) {
        if !self.at(open) {
            return;
        }
        let mut depth = 0i32;
        while !self.eof() {
            let t = self.op_txt(0);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
            }
            self.bump();
            if depth == 0 {
                return;
            }
        }
        self.error(&format!("unbalanced `{open}` (EOF before `{close}`)"));
    }

    /// Skip a generic parameter/argument list starting at `<`. Handles the
    /// `>>` double-close token.
    fn skip_angles(&mut self) {
        if !self.at("<") {
            return;
        }
        let mut depth = 0i32;
        while !self.eof() {
            match self.op_txt(0) {
                "<" | "<<" => depth += if self.txt(0) == "<<" { 2 } else { 1 },
                ">" => depth -= 1,
                ">>" => depth -= 2,
                ">=" | ">>=" => depth -= if self.txt(0) == ">>=" { 2 } else { 1 },
                _ => {}
            }
            self.bump();
            if depth <= 0 {
                return;
            }
        }
        self.error("unbalanced `<` in generics (EOF before `>`)");
    }

    /// Skip a `where` clause: everything up to a depth-0 `{` or `;`.
    fn skip_where(&mut self) {
        if !self.eat("where") {
            return;
        }
        let mut angle = 0i32;
        let mut depth = 0i32;
        while !self.eof() {
            match self.op_txt(0) {
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" | ";" if depth == 0 && angle <= 0 => return,
                _ => {}
            }
            self.bump();
        }
    }

    /// Scan a type, collecting its identifiers. Stops at a depth-0 token in
    /// `stops` (delimiter depths and angle depth both tracked).
    fn scan_type(&mut self, stops: &[&str]) -> TyRef {
        let lo = self.i;
        let mut idents = Vec::new();
        let mut angle = 0i32;
        let mut depth = 0i32;
        while !self.eof() {
            let t = self.op_txt(0);
            if depth == 0 && angle <= 0 && stops.contains(&t) {
                break;
            }
            match t {
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    if depth == 0 {
                        break; // closing an outer delimiter: past the type
                    }
                    depth -= 1;
                }
                "{" | "}" => break, // types never contain bare braces here
                _ => {}
            }
            if self.kind(0) == Some(TokenKind::Ident) {
                idents.push(self.txt(0).to_string());
            }
            self.bump();
        }
        TyRef {
            idents,
            lo,
            hi: self.prev().max(lo),
        }
    }

    /// Scan the type after `as` in a cast: a conservative greedy scan that
    /// stops at anything that cannot continue a type in expression position.
    fn scan_cast_type(&mut self) -> TyRef {
        let lo = self.i;
        let mut idents = Vec::new();
        loop {
            let t = self.op_txt(0);
            let k = self.kind(0);
            match t {
                "::" => {
                    self.bump();
                    continue;
                }
                // `*` and `const` only open a cast type as the raw-pointer
                // sigil `*const`/`*mut`; a multiplication after a cast can't
                // reach here because a completed ident ends the scan first.
                "&" | "dyn" | "mut" | "*" | "const" => {
                    self.bump();
                    continue;
                }
                "<" => {
                    self.skip_angles();
                    continue;
                }
                "(" => {
                    self.skip_balanced("(", ")");
                    continue;
                }
                "[" => {
                    self.skip_balanced("[", "]");
                    continue;
                }
                _ => {}
            }
            match k {
                Some(TokenKind::Ident) if t != "as" => {
                    idents.push(t.to_string());
                    self.bump();
                    // An ident ends the type unless a path/generic follows.
                    if !matches!(self.txt(0), "::" | "<") {
                        break;
                    }
                }
                Some(TokenKind::Lifetime) => {
                    self.bump();
                }
                _ => break,
            }
        }
        TyRef {
            idents,
            lo,
            hi: self.prev().max(lo),
        }
    }

    // ------------------------------------------------------------------
    // Items
    // ------------------------------------------------------------------

    fn parse_item(&mut self) -> Item {
        let lo = self.i;
        self.skip_outer_attrs();
        self.skip_inner_attrs();
        if self.eof() {
            return Item {
                lo,
                hi: lo,
                kind: ItemKind::Other,
            };
        }
        let mut is_pub = false;
        if self.eat("pub") {
            is_pub = true;
            if self.at("(") {
                self.skip_balanced("(", ")"); // pub(crate), pub(super), pub(in ..)
            }
        }
        // Fn qualifiers.
        while (self.at("const") && self.txt(1) == "fn")
            || (self.at("unsafe") && matches!(self.txt(1), "fn" | "impl" | "trait"))
            || (self.at("async") && self.txt(1) == "fn")
            || (self.at("extern") && self.kind(1) == Some(TokenKind::Str) && self.txt(2) == "fn")
        {
            self.bump();
            if self.kind(0) == Some(TokenKind::Str) {
                self.bump(); // extern "C"
            }
        }
        let kind = match self.txt(0) {
            "fn" => ItemKind::Fn(self.parse_fn(is_pub)),
            "use" => self.parse_use(),
            "struct" | "union" => self.parse_struct(),
            "enum" => self.parse_enum(),
            "impl" => self.parse_impl(),
            "trait" => self.parse_trait(),
            "mod" => self.parse_mod(),
            "const" => self.parse_const_or_static(false),
            "static" => self.parse_const_or_static(true),
            "type" => self.parse_type_alias(),
            "macro_rules" => self.parse_macro_def(),
            "extern" => {
                // `extern crate x;` or `extern "C" { ... }`.
                self.bump();
                if self.eat("crate") {
                    let name = self.txt(0).to_string();
                    self.bump();
                    self.eat(";");
                    ItemKind::ExternCrate { name }
                } else {
                    if self.kind(0) == Some(TokenKind::Str) {
                        self.bump();
                    }
                    if self.at("{") {
                        self.skip_balanced("{", "}");
                    } else {
                        self.eat(";");
                    }
                    ItemKind::Other
                }
            }
            _ => {
                // `path!( ... );` macro invocation item (e.g. `proptest! {}`).
                if self.kind(0) == Some(TokenKind::Ident)
                    && (self.txt(1) == "!" || (self.txt(1) == "::" && self.macro_path_ahead()))
                {
                    let path = self.parse_path_segments();
                    if self.eat("!") {
                        // Optional macro name (`macro_rules`-like invocations
                        // with an ident before the delimiter).
                        if self.kind(0) == Some(TokenKind::Ident) {
                            self.bump();
                        }
                        match self.txt(0) {
                            "{" => self.skip_balanced("{", "}"),
                            "(" => {
                                self.skip_balanced("(", ")");
                                self.eat(";");
                            }
                            "[" => {
                                self.skip_balanced("[", "]");
                                self.eat(";");
                            }
                            _ => self.error("expected macro delimiter"),
                        }
                        ItemKind::MacroCall { path }
                    } else {
                        self.error("expected item");
                        ItemKind::Other
                    }
                } else {
                    self.error("expected item");
                    self.bump();
                    ItemKind::Other
                }
            }
        };
        Item {
            lo,
            hi: self.prev().max(lo),
            kind,
        }
    }

    /// Is `a::b::...!` ahead (macro invocation item with a path)?
    fn macro_path_ahead(&self) -> bool {
        let mut k = 0;
        while self.kind(k) == Some(TokenKind::Ident) && self.txt(k + 1) == "::" {
            k += 2;
        }
        self.kind(k) == Some(TokenKind::Ident) && self.txt(k + 1) == "!"
    }

    fn parse_fn(&mut self, is_pub: bool) -> FnItem {
        self.bump(); // fn
        let name_tok = self.i;
        let name = if self.kind(0) == Some(TokenKind::Ident) {
            let n = self.txt(0).to_string();
            self.bump();
            n
        } else {
            self.error("expected fn name");
            String::new()
        };
        if self.at("<") {
            self.skip_angles();
        }
        let mut params = Vec::new();
        if self.expect("(", "to open fn params") {
            while !self.eof() && !self.at(")") {
                self.skip_outer_attrs();
                params.push(self.parse_param());
                if !self.eat(",") {
                    break;
                }
            }
            self.expect(")", "to close fn params");
        }
        let ret = if self.eat("->") {
            Some(self.scan_type(&["{", ";", "where"]))
        } else {
            None
        };
        self.skip_where();
        let body = if self.at("{") {
            Some(self.parse_block())
        } else {
            self.eat(";");
            None
        };
        FnItem {
            name,
            name_tok,
            is_pub,
            params,
            ret,
            body,
        }
    }

    fn parse_param(&mut self) -> Param {
        // Receivers: `self`, `&self`, `&mut self`, `mut self`, `&'a self`.
        let mut k = 0;
        let mut recv_mut = false;
        while matches!(self.txt(k), "&" | "mut") || self.kind(k) == Some(TokenKind::Lifetime) {
            if self.txt(k) == "mut" {
                recv_mut = true;
            }
            k += 1;
        }
        if self.txt(k) == "self" {
            for _ in 0..=k {
                self.bump();
            }
            let ty = if self.eat(":") {
                Some(self.scan_type(&[",", ")"]))
            } else {
                None
            };
            return Param {
                name: Some("self".to_string()),
                ty,
                ref_mut: recv_mut,
            };
        }
        let pat = self.parse_pat_single();
        let name = match &pat.kind {
            PatKind::Binding(n, _) => Some(n.clone()),
            _ => None,
        };
        let ty = if self.eat(":") {
            Some(self.scan_type(&[",", ")"]))
        } else {
            None
        };
        Param {
            name,
            ty,
            ref_mut: false,
        }
    }

    fn parse_use(&mut self) -> ItemKind {
        self.bump(); // use
        let mut bindings = Vec::new();
        self.parse_use_tree(&mut Vec::new(), &mut bindings);
        self.eat(";");
        ItemKind::Use { bindings }
    }

    fn parse_use_tree(&mut self, prefix: &mut Vec<String>, out: &mut Vec<UseBinding>) {
        let depth_at_entry = prefix.len();
        loop {
            match self.txt(0) {
                "{" => {
                    self.bump();
                    while !self.eof() && !self.at("}") {
                        self.parse_use_tree(prefix, out);
                        if !self.eat(",") {
                            break;
                        }
                    }
                    self.expect("}", "to close use tree");
                    break;
                }
                "*" => {
                    self.bump();
                    out.push(UseBinding {
                        path: prefix.clone(),
                        alias: "*".to_string(),
                    });
                    break;
                }
                _ if self.kind(0) == Some(TokenKind::Ident) => {
                    let seg = self.txt(0).to_string();
                    self.bump();
                    prefix.push(seg);
                    if self.eat("::") {
                        continue;
                    }
                    let alias = if self.eat("as") {
                        let a = self.txt(0).to_string();
                        self.bump();
                        a
                    } else {
                        prefix.last().cloned().unwrap_or_default()
                    };
                    out.push(UseBinding {
                        path: prefix.clone(),
                        alias,
                    });
                    break;
                }
                _ => {
                    self.error("expected use tree");
                    break;
                }
            }
        }
        prefix.truncate(depth_at_entry);
    }

    fn parse_struct(&mut self) -> ItemKind {
        self.bump(); // struct / union
        let name = self.txt(0).to_string();
        self.bump();
        if self.at("<") {
            self.skip_angles();
        }
        self.skip_where();
        match self.txt(0) {
            "(" => {
                self.skip_balanced("(", ")");
                self.skip_where();
                self.eat(";");
            }
            "{" => self.skip_balanced("{", "}"),
            _ => {
                self.eat(";");
            }
        }
        ItemKind::Struct { name }
    }

    fn parse_enum(&mut self) -> ItemKind {
        self.bump(); // enum
        let name = self.txt(0).to_string();
        self.bump();
        if self.at("<") {
            self.skip_angles();
        }
        self.skip_where();
        let mut variants = Vec::new();
        if self.expect("{", "to open enum body") {
            while !self.eof() && !self.at("}") {
                self.skip_outer_attrs();
                if self.kind(0) != Some(TokenKind::Ident) {
                    self.error("expected enum variant");
                    break;
                }
                variants.push(self.txt(0).to_string());
                self.bump();
                match self.txt(0) {
                    "(" => self.skip_balanced("(", ")"),
                    "{" => self.skip_balanced("{", "}"),
                    _ => {}
                }
                if self.eat("=") {
                    // Discriminant: skip to `,` or `}` at depth 0.
                    let mut depth = 0i32;
                    while !self.eof() {
                        match self.txt(0) {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" if depth > 0 => depth -= 1,
                            "," | "}" if depth == 0 => break,
                            _ => {}
                        }
                        self.bump();
                    }
                }
                if !self.eat(",") {
                    break;
                }
            }
            self.expect("}", "to close enum body");
        }
        ItemKind::Enum { name, variants }
    }

    fn parse_impl(&mut self) -> ItemKind {
        self.bump(); // impl
        if self.at("<") {
            self.skip_angles();
        }
        // Scan the (trait-or-self) type path: track the last depth-0 ident.
        let first = self.scan_impl_ty();
        let (of_trait, self_ty) = if self.eat("for") {
            let st = self.scan_impl_ty();
            (Some(first), st)
        } else {
            (None, first)
        };
        self.skip_where();
        let mut items = Vec::new();
        if self.expect("{", "to open impl body") {
            while !self.eof() && !self.at("}") {
                let before = self.i;
                items.push(self.parse_item());
                if self.i == before {
                    self.bump();
                }
            }
            self.expect("}", "to close impl body");
        }
        ItemKind::Impl(ImplItem {
            self_ty,
            of_trait,
            items,
        })
    }

    /// Scan a type path in impl-header position; returns the last ident seen
    /// at angle-depth 0 (the type/trait name).
    fn scan_impl_ty(&mut self) -> String {
        let mut name = String::new();
        let mut angle = 0i32;
        while !self.eof() {
            let t = self.txt(0);
            if angle <= 0 && matches!(t, "for" | "where" | "{") {
                break;
            }
            match t {
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                _ => {
                    if angle == 0 && self.kind(0) == Some(TokenKind::Ident) && t != "dyn" {
                        name = t.to_string();
                    }
                }
            }
            self.bump();
        }
        name
    }

    fn parse_trait(&mut self) -> ItemKind {
        self.bump(); // trait
        let name = self.txt(0).to_string();
        self.bump();
        if self.at("<") {
            self.skip_angles();
        }
        if self.eat(":") {
            // Supertrait bounds: skip to `{` or `where` at depth 0.
            let mut angle = 0i32;
            while !self.eof() {
                match self.txt(0) {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    "{" | "where" if angle <= 0 => break,
                    _ => {}
                }
                self.bump();
            }
        }
        self.skip_where();
        let mut items = Vec::new();
        if self.expect("{", "to open trait body") {
            while !self.eof() && !self.at("}") {
                let before = self.i;
                items.push(self.parse_item());
                if self.i == before {
                    self.bump();
                }
            }
            self.expect("}", "to close trait body");
        }
        ItemKind::Trait { name, items }
    }

    fn parse_mod(&mut self) -> ItemKind {
        self.bump(); // mod
        let name = self.txt(0).to_string();
        self.bump();
        if self.eat(";") {
            return ItemKind::Mod { name, items: None };
        }
        let mut items = Vec::new();
        if self.expect("{", "to open mod body") {
            while !self.eof() && !self.at("}") {
                let before = self.i;
                items.push(self.parse_item());
                if self.i == before {
                    self.bump();
                }
            }
            self.expect("}", "to close mod body");
        }
        ItemKind::Mod {
            name,
            items: Some(items),
        }
    }

    fn parse_const_or_static(&mut self, is_static: bool) -> ItemKind {
        self.bump(); // const / static
        self.eat("mut");
        let name = self.txt(0).to_string();
        self.bump();
        self.eat(":");
        self.scan_type(&["=", ";"]);
        let init = if self.eat("=") {
            Some(self.parse_expr(false))
        } else {
            None
        };
        self.eat(";");
        if is_static {
            ItemKind::Static { name, init }
        } else {
            ItemKind::Const { name, init }
        }
    }

    fn parse_type_alias(&mut self) -> ItemKind {
        self.bump(); // type
        let name = self.txt(0).to_string();
        self.bump();
        if self.at("<") {
            self.skip_angles();
        }
        if self.eat(":") {
            self.scan_type(&["=", ";"]); // assoc-type bounds
        }
        self.skip_where();
        if self.eat("=") {
            self.scan_type(&[";"]);
        }
        self.eat(";");
        ItemKind::TypeAlias { name }
    }

    fn parse_macro_def(&mut self) -> ItemKind {
        self.bump(); // macro_rules
        self.eat("!");
        let name = self.txt(0).to_string();
        self.bump();
        self.skip_balanced("{", "}");
        ItemKind::MacroDef { name }
    }

    // ------------------------------------------------------------------
    // Blocks and statements
    // ------------------------------------------------------------------

    fn parse_block(&mut self) -> Block {
        let lo = self.i;
        if !self.expect("{", "to open block") {
            return Block {
                stmts: Vec::new(),
                lo,
                hi: lo,
            };
        }
        self.skip_inner_attrs();
        let mut stmts = Vec::new();
        while !self.eof() && !self.at("}") {
            let before = self.i;
            stmts.push(self.parse_stmt());
            if self.i == before {
                self.error("unexpected token in block");
                self.bump();
            }
        }
        self.expect("}", "to close block");
        Block {
            stmts,
            lo,
            hi: self.prev().max(lo),
        }
    }

    fn parse_stmt(&mut self) -> Stmt {
        self.skip_outer_attrs();
        self.skip_inner_attrs();
        if self.eat(";") {
            return Stmt::Empty;
        }
        if self.at("let") {
            return self.parse_let();
        }
        let t = self.txt(0);
        let is_item = is_item_keyword(t)
            || (t == "const" && self.txt(1) != "{")
            || (t == "type" && self.kind(1) == Some(TokenKind::Ident) && self.txt(2) != ":")
            || (t == "unsafe" && matches!(self.txt(1), "fn" | "impl" | "trait"));
        if is_item && self.kind(0) == Some(TokenKind::Ident) {
            return Stmt::Item(self.parse_item());
        }
        let e = self.parse_expr(false);
        self.eat(";");
        Stmt::Expr(e)
    }

    fn parse_let(&mut self) -> Stmt {
        self.bump(); // let
        let pat = self.parse_pat_single();
        let ty = if self.eat(":") {
            Some(self.scan_type(&["=", ";"]))
        } else {
            None
        };
        let init = if self.eat("=") {
            Some(self.parse_expr(false))
        } else {
            None
        };
        let els = if self.eat("else") {
            Some(self.parse_block())
        } else {
            None
        };
        self.eat(";");
        Stmt::Let { pat, ty, init, els }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn parse_expr(&mut self, no_struct: bool) -> Expr {
        self.parse_bin(0, no_struct)
    }

    /// Can the current token start an expression?
    fn starts_expr(&self) -> bool {
        match self.kind(0) {
            None => false,
            Some(TokenKind::Int) | Some(TokenKind::Float) | Some(TokenKind::Str) => true,
            Some(TokenKind::Lifetime) => self.txt(1) == ":",
            Some(TokenKind::Ident) => !matches!(self.txt(0), "in" | "else" | "as" | "where"),
            Some(TokenKind::Punct) => {
                matches!(
                    self.txt(0),
                    "(" | "["
                        | "{"
                        | "&"
                        | "&&"
                        | "*"
                        | "-"
                        | "!"
                        | "|"
                        | "||"
                        | ".."
                        | "..="
                        | "<"
                        | "#"
                )
            }
        }
    }

    fn bin_prec(op: &str) -> Option<(u8, bool)> {
        // (precedence, right-assoc)
        Some(match op {
            "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>=" => {
                (1, true)
            }
            "||" => (3, false),
            "&&" => (4, false),
            "==" | "!=" | "<" | ">" | "<=" | ">=" => (5, false),
            "|" => (6, false),
            "^" => (7, false),
            "&" => (8, false),
            "<<" | ">>" => (9, false),
            "+" | "-" => (10, false),
            "*" | "/" | "%" => (11, false),
            _ => return None,
        })
    }

    fn parse_bin(&mut self, min_prec: u8, no_struct: bool) -> Expr {
        let lo = self.i;
        // Prefix ranges: `..end`, `..=end`, bare `..`.
        let mut lhs = if self.at("..") || self.at("..=") {
            self.bump();
            let end = if self.starts_expr() {
                Some(Box::new(self.parse_bin(3, no_struct)))
            } else {
                None
            };
            Expr {
                lo,
                hi: self.prev().max(lo),
                kind: ExprKind::Range { start: None, end },
            }
        } else {
            self.parse_unary(no_struct)
        };
        loop {
            let op = self.op_txt(0).to_string();
            if op == ".." || op == "..=" {
                if 2 < min_prec {
                    break;
                }
                self.bump();
                let end = if self.starts_expr() {
                    Some(Box::new(self.parse_bin(3, no_struct)))
                } else {
                    None
                };
                lhs = Expr {
                    lo,
                    hi: self.prev().max(lo),
                    kind: ExprKind::Range {
                        start: Some(Box::new(lhs)),
                        end,
                    },
                };
                continue;
            }
            let Some((prec, right)) = Self::bin_prec(&op) else {
                break;
            };
            if prec < min_prec {
                break;
            }
            let op_tok = self.bump();
            let next_min = if right { prec } else { prec + 1 };
            let rhs = self.parse_bin(next_min, no_struct);
            lhs = Expr {
                lo,
                hi: self.prev().max(lo),
                kind: ExprKind::Binary {
                    op,
                    op_tok,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
            };
        }
        lhs
    }

    fn parse_unary(&mut self, no_struct: bool) -> Expr {
        let lo = self.i;
        match self.op_txt(0) {
            "&" => {
                self.bump();
                let is_mut = self.eat("mut");
                let e = self.parse_unary(no_struct);
                Expr {
                    lo,
                    hi: e.hi.max(lo),
                    kind: ExprKind::Ref {
                        is_mut,
                        expr: Box::new(e),
                    },
                }
            }
            "&&" => {
                self.bump();
                let is_mut = self.eat("mut");
                let e = self.parse_unary(no_struct);
                let inner = Expr {
                    lo,
                    hi: e.hi.max(lo),
                    kind: ExprKind::Ref {
                        is_mut,
                        expr: Box::new(e),
                    },
                };
                Expr {
                    lo,
                    hi: inner.hi,
                    kind: ExprKind::Ref {
                        is_mut: false,
                        expr: Box::new(inner),
                    },
                }
            }
            "*" | "-" | "!" => {
                let op = self.txt(0).to_string();
                self.bump();
                let e = self.parse_unary(no_struct);
                Expr {
                    lo,
                    hi: e.hi.max(lo),
                    kind: ExprKind::Unary {
                        op,
                        expr: Box::new(e),
                    },
                }
            }
            _ => self.parse_postfix(no_struct),
        }
    }

    fn parse_postfix(&mut self, no_struct: bool) -> Expr {
        let lo = self.i;
        let mut e = self.parse_primary(no_struct);
        loop {
            match self.op_txt(0) {
                "." => {
                    self.bump();
                    match self.kind(0) {
                        Some(TokenKind::Ident) => {
                            let name = self.txt(0).to_string();
                            let name_tok = self.bump();
                            if self.at("::") && self.txt(1) == "<" {
                                self.bump();
                                self.skip_angles(); // turbofish
                            }
                            if self.at("(") {
                                let args = self.parse_call_args();
                                e = Expr {
                                    lo,
                                    hi: self.prev().max(lo),
                                    kind: ExprKind::MethodCall {
                                        recv: Box::new(e),
                                        name,
                                        name_tok,
                                        args,
                                    },
                                };
                            } else {
                                e = Expr {
                                    lo,
                                    hi: self.prev().max(lo),
                                    kind: ExprKind::Field {
                                        recv: Box::new(e),
                                        name,
                                    },
                                };
                            }
                        }
                        Some(TokenKind::Int) | Some(TokenKind::Float) => {
                            // Tuple field (`x.0`; `x.0.1` lexes as Float).
                            let name = self.txt(0).to_string();
                            self.bump();
                            e = Expr {
                                lo,
                                hi: self.prev().max(lo),
                                kind: ExprKind::Field {
                                    recv: Box::new(e),
                                    name,
                                },
                            };
                        }
                        _ => {
                            self.error("expected field or method name after `.`");
                            break;
                        }
                    }
                }
                "?" => {
                    self.bump();
                    e = Expr {
                        lo,
                        hi: self.prev().max(lo),
                        kind: ExprKind::Try { expr: Box::new(e) },
                    };
                }
                "(" => {
                    let args = self.parse_call_args();
                    e = Expr {
                        lo,
                        hi: self.prev().max(lo),
                        kind: ExprKind::Call {
                            callee: Box::new(e),
                            args,
                        },
                    };
                }
                "[" => {
                    self.bump();
                    let idx = self.parse_expr(false);
                    self.expect("]", "to close index");
                    e = Expr {
                        lo,
                        hi: self.prev().max(lo),
                        kind: ExprKind::Index {
                            recv: Box::new(e),
                            index: Box::new(idx),
                        },
                    };
                }
                "as" => {
                    self.bump();
                    let ty = self.scan_cast_type();
                    e = Expr {
                        lo,
                        hi: self.prev().max(lo),
                        kind: ExprKind::Cast {
                            expr: Box::new(e),
                            ty,
                        },
                    };
                }
                _ => break,
            }
        }
        e
    }

    fn parse_call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        self.expect("(", "to open call args");
        while !self.eof() && !self.at(")") {
            args.push(self.parse_expr(false));
            if !self.eat(",") {
                break;
            }
        }
        self.expect(")", "to close call args");
        args
    }

    fn parse_primary(&mut self, no_struct: bool) -> Expr {
        let lo = self.i;
        let mk = |p: &Self, kind| Expr {
            lo,
            hi: p.prev().max(lo),
            kind,
        };
        match self.kind(0) {
            Some(TokenKind::Int) | Some(TokenKind::Float) | Some(TokenKind::Str) => {
                self.bump();
                return mk(self, ExprKind::Lit);
            }
            Some(TokenKind::Lifetime) => {
                // Labeled loop: `'a: loop/while/for { ... }`.
                self.bump();
                self.eat(":");
                return self.parse_primary(no_struct);
            }
            _ => {}
        }
        match self.txt(0) {
            "#" => {
                self.skip_outer_attrs();
                return self.parse_primary(no_struct);
            }
            "(" => {
                self.bump();
                let mut elems = Vec::new();
                let mut saw_comma = false;
                while !self.eof() && !self.at(")") {
                    elems.push(self.parse_expr(false));
                    if self.eat(",") {
                        saw_comma = true;
                    } else {
                        break;
                    }
                }
                self.expect(")", "to close paren");
                if elems.len() == 1 && !saw_comma {
                    let mut inner = elems.pop().expect("len checked");
                    inner.lo = lo;
                    inner.hi = self.prev().max(lo);
                    return inner;
                }
                return mk(self, ExprKind::Tuple(elems));
            }
            "[" => {
                self.bump();
                let mut elems = Vec::new();
                if !self.at("]") {
                    let first = self.parse_expr(false);
                    elems.push(first);
                    if self.eat(";") {
                        elems.push(self.parse_expr(false));
                    } else {
                        while self.eat(",") {
                            if self.at("]") {
                                break;
                            }
                            elems.push(self.parse_expr(false));
                        }
                    }
                }
                self.expect("]", "to close array");
                return mk(self, ExprKind::Array(elems));
            }
            "{" => {
                let b = self.parse_block();
                return mk(self, ExprKind::Block(b));
            }
            "|" | "||" => return self.parse_closure(lo),
            "<" => {
                // Qualified path `<T as Trait>::assoc(...)`.
                self.skip_angles();
                let mut segs = vec!["<qualified>".to_string()];
                while self.eat("::") {
                    if self.at("<") {
                        self.skip_angles();
                        continue;
                    }
                    if self.kind(0) == Some(TokenKind::Ident) {
                        segs.push(self.txt(0).to_string());
                        self.bump();
                    } else {
                        break;
                    }
                }
                return mk(self, ExprKind::Path(segs));
            }
            "move" => {
                self.bump();
                if self.at("|") || self.at("||") {
                    return self.parse_closure(lo);
                }
                if self.at("{") {
                    let b = self.parse_block();
                    return mk(self, ExprKind::Block(b));
                }
                self.error("expected closure or block after `move`");
                return mk(self, ExprKind::Opaque);
            }
            "if" => return self.parse_if(lo),
            "match" => return self.parse_match(lo),
            "while" => {
                self.bump();
                let cond = if self.at("let") {
                    self.parse_cond_let()
                } else {
                    self.parse_expr(true)
                };
                let body = self.parse_block();
                return mk(
                    self,
                    ExprKind::While {
                        cond: Box::new(cond),
                        body,
                    },
                );
            }
            "for" => {
                self.bump();
                let pat = self.parse_pat_top(&["in"]);
                self.expect("in", "in for loop");
                let iter = self.parse_expr(true);
                let body = self.parse_block();
                return mk(
                    self,
                    ExprKind::For {
                        pat,
                        iter: Box::new(iter),
                        body,
                    },
                );
            }
            "loop" => {
                self.bump();
                let body = self.parse_block();
                return mk(self, ExprKind::Loop { body });
            }
            "unsafe" => {
                self.bump();
                let b = self.parse_block();
                return mk(self, ExprKind::Block(b));
            }
            "return" => {
                self.bump();
                let val = if self.starts_expr() {
                    Some(Box::new(self.parse_expr(no_struct)))
                } else {
                    None
                };
                return mk(self, ExprKind::Return(val));
            }
            "break" => {
                self.bump();
                if self.kind(0) == Some(TokenKind::Lifetime) {
                    self.bump();
                }
                let val = if self.starts_expr() {
                    Some(Box::new(self.parse_expr(no_struct)))
                } else {
                    None
                };
                return mk(self, ExprKind::Break(val));
            }
            "continue" => {
                self.bump();
                if self.kind(0) == Some(TokenKind::Lifetime) {
                    self.bump();
                }
                return mk(self, ExprKind::Continue);
            }
            "let" => {
                let e = self.parse_cond_let();
                return e;
            }
            "true" | "false" => {
                self.bump();
                return mk(self, ExprKind::BoolLit);
            }
            _ => {}
        }
        if self.kind(0) == Some(TokenKind::Ident) {
            let segs = self.parse_path_segments();
            // Macro invocation.
            if self.at("!") && matches!(self.op_txt(1), "(" | "[" | "{") {
                self.bump(); // !
                let (open, close) = match self.op_txt(0) {
                    "(" => ("(", ")"),
                    "[" => ("[", "]"),
                    _ => ("{", "}"),
                };
                let body_lo = self.i + 1;
                self.skip_balanced(open, close);
                let body_hi = self.prev().saturating_sub(1).max(body_lo.saturating_sub(1));
                return mk(
                    self,
                    ExprKind::Macro {
                        path: segs,
                        body_lo,
                        body_hi,
                    },
                );
            }
            // Struct literal (never in a no-struct context).
            if self.at("{") && !no_struct && self.struct_lit_ahead() {
                self.bump(); // {
                let mut fields = Vec::new();
                let mut rest = None;
                while !self.eof() && !self.at("}") {
                    self.skip_outer_attrs(); // `#[cfg(...)]`-gated fields
                    if self.at("..") {
                        self.bump();
                        rest = Some(Box::new(self.parse_expr(false)));
                        break;
                    }
                    if self.kind(0) != Some(TokenKind::Ident)
                        && self.kind(0) != Some(TokenKind::Int)
                    {
                        self.error("expected struct literal field");
                        break;
                    }
                    let fname = self.txt(0).to_string();
                    self.bump();
                    let val = if self.eat(":") {
                        Some(self.parse_expr(false))
                    } else {
                        None
                    };
                    fields.push((fname, val));
                    if !self.eat(",") {
                        break;
                    }
                }
                self.expect("}", "to close struct literal");
                return mk(
                    self,
                    ExprKind::StructLit {
                        path: segs,
                        fields,
                        rest,
                    },
                );
            }
            return mk(self, ExprKind::Path(segs));
        }
        self.error("expected expression");
        self.bump();
        mk(self, ExprKind::Opaque)
    }

    /// Lookahead: does `{` open a struct literal (`{ ident: ...`, `{ ident ,`,
    /// `{ ident }`, `{ .. }`, `{ }`)?
    fn struct_lit_ahead(&self) -> bool {
        debug_assert!(self.at("{"));
        if self.op_txt(1) == "}" || self.op_txt(1) == ".." {
            return true;
        }
        (self.kind(1) == Some(TokenKind::Ident) || self.kind(1) == Some(TokenKind::Int))
            && matches!(self.op_txt(2), ":" | "," | "}")
            && self.op_txt(3) != ":" // rule out `{ path :: seg` via `::` lexing as one token — `:` `:` never splits
    }

    fn parse_closure(&mut self, lo: usize) -> Expr {
        let mut params = Vec::new();
        if self.eat("||") {
            // Zero-parameter closure.
        } else {
            self.expect("|", "to open closure params");
            while !self.eof() && !self.at("|") {
                params.push(self.parse_pat_single());
                if self.eat(":") {
                    self.scan_type(&[",", "|"]);
                }
                if !self.eat(",") {
                    break;
                }
            }
            self.expect("|", "to close closure params");
        }
        let body = if self.eat("->") {
            self.scan_type(&["{"]);
            let b = self.parse_block();
            Expr {
                lo: b.lo,
                hi: b.hi,
                kind: ExprKind::Block(b),
            }
        } else {
            self.parse_expr(false)
        };
        Expr {
            lo,
            hi: body.hi.max(lo),
            kind: ExprKind::Closure {
                params,
                body: Box::new(body),
            },
        }
    }

    fn parse_cond_let(&mut self) -> Expr {
        let lo = self.i;
        self.bump(); // let
        let pat = self.parse_pat_top(&["="]);
        self.expect("=", "in let condition");
        let scrut = self.parse_expr(true);
        Expr {
            lo,
            hi: scrut.hi.max(lo),
            kind: ExprKind::CondLet {
                pat,
                expr: Box::new(scrut),
            },
        }
    }

    fn parse_if(&mut self, lo: usize) -> Expr {
        self.bump(); // if
        let cond = if self.at("let") {
            self.parse_cond_let()
        } else {
            self.parse_expr(true)
        };
        let then = self.parse_block();
        let els = if self.eat("else") {
            if self.at("if") {
                let e_lo = self.i;
                Some(Box::new(self.parse_if(e_lo)))
            } else {
                let b = self.parse_block();
                Some(Box::new(Expr {
                    lo: b.lo,
                    hi: b.hi,
                    kind: ExprKind::Block(b),
                }))
            }
        } else {
            None
        };
        Expr {
            lo,
            hi: self.prev().max(lo),
            kind: ExprKind::If {
                cond: Box::new(cond),
                then,
                els,
            },
        }
    }

    fn parse_match(&mut self, lo: usize) -> Expr {
        self.bump(); // match
        let scrutinee = self.parse_expr(true);
        let mut arms = Vec::new();
        if self.expect("{", "to open match body") {
            while !self.eof() && !self.at("}") {
                self.skip_outer_attrs();
                self.eat("|"); // leading or-pipe
                let pat = self.parse_pat_top(&["if", "=>"]);
                let guard = if self.eat("if") {
                    Some(self.parse_expr(true))
                } else {
                    None
                };
                self.expect("=>", "after match pattern");
                let body = self.parse_expr(false);
                self.eat(",");
                arms.push(Arm { pat, guard, body });
            }
            self.expect("}", "to close match body");
        }
        Expr {
            lo,
            hi: self.prev().max(lo),
            kind: ExprKind::Match {
                scrutinee: Box::new(scrutinee),
                arms,
            },
        }
    }

    fn parse_path_segments(&mut self) -> Vec<String> {
        let mut segs = Vec::new();
        if self.kind(0) == Some(TokenKind::Ident) {
            segs.push(self.txt(0).to_string());
            self.bump();
        }
        while self.at("::") {
            if self.txt(1) == "<" {
                self.bump(); // ::
                self.skip_angles(); // turbofish
                continue;
            }
            if self.kind(1) == Some(TokenKind::Ident) {
                self.bump(); // ::
                segs.push(self.txt(0).to_string());
                self.bump();
            } else {
                break;
            }
        }
        segs
    }

    // ------------------------------------------------------------------
    // Patterns
    // ------------------------------------------------------------------

    /// Parse a pattern, folding depth-0 `|` alternatives into [`PatKind::Or`].
    /// `stops` guards the or-fold (e.g. `if`/`=>` end a match-arm pattern).
    fn parse_pat_top(&mut self, stops: &[&str]) -> Pat {
        let lo = self.i;
        let first = self.parse_pat_single();
        if !self.at("|") || stops.contains(&self.txt(0)) {
            return first;
        }
        let mut alts = vec![first];
        while self.at("|") && !stops.contains(&self.txt(0)) {
            self.bump();
            alts.push(self.parse_pat_single());
        }
        Pat {
            lo,
            hi: self.prev().max(lo),
            kind: PatKind::Or(alts),
        }
    }

    fn parse_pat_single(&mut self) -> Pat {
        let lo = self.i;
        let mk = |p: &Self, kind| Pat {
            lo,
            hi: p.prev().max(lo),
            kind,
        };
        match self.op_txt(0) {
            "_" => {
                self.bump();
                return mk(self, PatKind::Wild);
            }
            ".." => {
                self.bump();
                return mk(self, PatKind::Rest);
            }
            "&" | "&&" => {
                let double = self.at("&&");
                self.bump();
                self.eat("mut");
                let inner = self.parse_pat_single();
                let r = Pat {
                    lo,
                    hi: inner.hi.max(lo),
                    kind: PatKind::Ref(Box::new(inner)),
                };
                if double {
                    return Pat {
                        lo,
                        hi: r.hi,
                        kind: PatKind::Ref(Box::new(r)),
                    };
                }
                return r;
            }
            "mut" | "ref" => {
                self.bump();
                return self.parse_pat_single();
            }
            "(" => {
                self.bump();
                let mut elems = Vec::new();
                while !self.eof() && !self.at(")") {
                    elems.push(self.parse_pat_top(&[]));
                    if !self.eat(",") {
                        break;
                    }
                }
                self.expect(")", "to close tuple pattern");
                return mk(self, PatKind::Tuple(elems));
            }
            "[" => {
                self.bump();
                let mut elems = Vec::new();
                while !self.eof() && !self.at("]") {
                    elems.push(self.parse_pat_top(&[]));
                    if !self.eat(",") {
                        break;
                    }
                }
                self.expect("]", "to close slice pattern");
                return mk(self, PatKind::Slice(elems));
            }
            "-" => {
                self.bump();
                self.bump(); // the literal
                if self.at("..=") || self.at("..") {
                    self.bump();
                    self.parse_pat_range_end();
                    return mk(self, PatKind::Range);
                }
                return mk(self, PatKind::Lit);
            }
            _ => {}
        }
        match self.kind(0) {
            Some(TokenKind::Int) | Some(TokenKind::Float) | Some(TokenKind::Str) => {
                self.bump();
                if self.at("..=") || self.at("..") {
                    self.bump();
                    self.parse_pat_range_end();
                    return mk(self, PatKind::Range);
                }
                return mk(self, PatKind::Lit);
            }
            Some(TokenKind::Ident) => {
                let segs = self.parse_path_segments();
                match self.op_txt(0) {
                    "(" => {
                        self.bump();
                        let mut elems = Vec::new();
                        while !self.eof() && !self.at(")") {
                            elems.push(self.parse_pat_top(&[]));
                            if !self.eat(",") {
                                break;
                            }
                        }
                        self.expect(")", "to close tuple-struct pattern");
                        return mk(self, PatKind::TupleStruct(segs, elems));
                    }
                    "{" => {
                        self.bump();
                        let mut elems = Vec::new();
                        while !self.eof() && !self.at("}") {
                            if self.at("..") {
                                self.bump();
                                break;
                            }
                            self.eat("ref");
                            self.eat("mut");
                            if self.kind(0) != Some(TokenKind::Ident) {
                                self.error("expected field pattern");
                                break;
                            }
                            let fname = self.txt(0).to_string();
                            self.bump();
                            if self.eat(":") {
                                elems.push(self.parse_pat_top(&[]));
                            } else {
                                let hi = self.prev();
                                elems.push(Pat {
                                    lo: hi,
                                    hi,
                                    kind: PatKind::Binding(fname, None),
                                });
                            }
                            if !self.eat(",") {
                                break;
                            }
                        }
                        self.expect("}", "to close struct pattern");
                        return mk(self, PatKind::Struct(segs, elems));
                    }
                    "..=" | ".." => {
                        self.bump();
                        self.parse_pat_range_end();
                        return mk(self, PatKind::Range);
                    }
                    "@" => {
                        self.bump();
                        let sub = self.parse_pat_single();
                        let name = segs.first().cloned().unwrap_or_default();
                        return mk(self, PatKind::Binding(name, Some(Box::new(sub))));
                    }
                    _ => {}
                }
                if segs.len() == 1 {
                    let name = &segs[0];
                    let is_binding = name
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_lowercase() || c == '_');
                    if is_binding && !matches!(name.as_str(), "None" | "Some") {
                        return mk(self, PatKind::Binding(name.clone(), None));
                    }
                }
                return mk(self, PatKind::Path(segs));
            }
            _ => {}
        }
        self.error("expected pattern");
        self.bump();
        mk(self, PatKind::Opaque)
    }

    fn parse_pat_range_end(&mut self) {
        // `..=END` where END is a literal or path; consume conservatively.
        if self.at("-") {
            self.bump();
        }
        match self.kind(0) {
            Some(TokenKind::Int) | Some(TokenKind::Float) | Some(TokenKind::Str) => {
                self.bump();
            }
            Some(TokenKind::Ident) => {
                self.parse_path_segments();
            }
            _ => {}
        }
    }
}

// ----------------------------------------------------------------------
// Walkers
// ----------------------------------------------------------------------

/// Visit every expression in `items` (pre-order), including nested items.
pub fn walk_items<'a>(items: &'a [Item], f: &mut dyn FnMut(&'a Expr)) {
    for item in items {
        walk_item(item, f);
    }
}

fn walk_item<'a>(item: &'a Item, f: &mut dyn FnMut(&'a Expr)) {
    match &item.kind {
        ItemKind::Fn(func) => {
            if let Some(b) = &func.body {
                walk_block(b, f);
            }
        }
        ItemKind::Impl(imp) => walk_items(&imp.items, f),
        ItemKind::Trait { items, .. } => walk_items(items, f),
        ItemKind::Mod {
            items: Some(items), ..
        } => walk_items(items, f),
        ItemKind::Const { init: Some(e), .. } | ItemKind::Static { init: Some(e), .. } => {
            walk_expr(e, f)
        }
        _ => {}
    }
}

/// Visit every expression in a block (pre-order).
pub fn walk_block<'a>(b: &'a Block, f: &mut dyn FnMut(&'a Expr)) {
    for s in &b.stmts {
        walk_stmt(s, f);
    }
}

pub fn walk_stmt<'a>(s: &'a Stmt, f: &mut dyn FnMut(&'a Expr)) {
    match s {
        Stmt::Let { init, els, .. } => {
            if let Some(e) = init {
                walk_expr(e, f);
            }
            if let Some(b) = els {
                walk_block(b, f);
            }
        }
        Stmt::Item(item) => walk_item(item, f),
        Stmt::Expr(e) => walk_expr(e, f),
        Stmt::Empty => {}
    }
}

pub fn walk_expr<'a>(e: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
    f(e);
    match &e.kind {
        ExprKind::MethodCall { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::Call { callee, args } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::Field { recv, .. } => walk_expr(recv, f),
        ExprKind::Index { recv, index } => {
            walk_expr(recv, f);
            walk_expr(index, f);
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        ExprKind::Unary { expr, .. }
        | ExprKind::Ref { expr, .. }
        | ExprKind::Try { expr }
        | ExprKind::Cast { expr, .. } => walk_expr(expr, f),
        ExprKind::Match { scrutinee, arms } => {
            walk_expr(scrutinee, f);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    walk_expr(g, f);
                }
                walk_expr(&arm.body, f);
            }
        }
        ExprKind::If { cond, then, els } => {
            walk_expr(cond, f);
            walk_block(then, f);
            if let Some(e) = els {
                walk_expr(e, f);
            }
        }
        ExprKind::While { cond, body } => {
            walk_expr(cond, f);
            walk_block(body, f);
        }
        ExprKind::For { iter, body, .. } => {
            walk_expr(iter, f);
            walk_block(body, f);
        }
        ExprKind::Loop { body } => walk_block(body, f),
        ExprKind::Block(b) => walk_block(b, f),
        ExprKind::Closure { body, .. } => walk_expr(body, f),
        ExprKind::StructLit { fields, rest, .. } => {
            for (_, v) in fields {
                if let Some(e) = v {
                    walk_expr(e, f);
                }
            }
            if let Some(r) = rest {
                walk_expr(r, f);
            }
        }
        ExprKind::Tuple(elems) | ExprKind::Array(elems) => {
            for e in elems {
                walk_expr(e, f);
            }
        }
        ExprKind::Range { start, end } => {
            if let Some(e) = start {
                walk_expr(e, f);
            }
            if let Some(e) = end {
                walk_expr(e, f);
            }
        }
        ExprKind::Return(Some(e)) | ExprKind::Break(Some(e)) => walk_expr(e, f),
        ExprKind::CondLet { expr, .. } => walk_expr(expr, f),
        ExprKind::Lit
        | ExprKind::BoolLit
        | ExprKind::Path(_)
        | ExprKind::Macro { .. }
        | ExprKind::Return(None)
        | ExprKind::Break(None)
        | ExprKind::Continue
        | ExprKind::Opaque => {}
    }
}

/// Visit every pattern node in a pattern tree (pre-order).
pub fn walk_pat<'a>(p: &'a Pat, f: &mut dyn FnMut(&'a Pat)) {
    f(p);
    match &p.kind {
        PatKind::TupleStruct(_, elems)
        | PatKind::Struct(_, elems)
        | PatKind::Tuple(elems)
        | PatKind::Slice(elems)
        | PatKind::Or(elems) => {
            for e in elems {
                walk_pat(e, f);
            }
        }
        PatKind::Ref(inner) => walk_pat(inner, f),
        PatKind::Binding(_, Some(inner)) => walk_pat(inner, f),
        _ => {}
    }
}

// ----------------------------------------------------------------------
// Debug dump (snapshot tests)
// ----------------------------------------------------------------------

/// Compact S-expression dump of an AST, for snapshot tests. Deterministic
/// and whitespace-free so expectations stay readable inline.
pub fn dump(ast: &Ast) -> String {
    let mut s = String::new();
    for (i, item) in ast.items.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        dump_item(item, &mut s);
    }
    s
}

fn dump_item(item: &Item, s: &mut String) {
    match &item.kind {
        ItemKind::Fn(f) => {
            s.push_str("(fn ");
            s.push_str(&f.name);
            if f.is_pub {
                s.push_str(" pub");
            }
            s.push_str(" (params");
            for p in &f.params {
                s.push(' ');
                s.push_str(p.name.as_deref().unwrap_or("_"));
                if let Some(ty) = &p.ty {
                    s.push(':');
                    s.push_str(&ty.idents.join("::"));
                }
            }
            s.push(')');
            if let Some(b) = &f.body {
                s.push(' ');
                dump_block(b, s);
            }
            s.push(')');
        }
        ItemKind::Struct { name } => {
            s.push_str("(struct ");
            s.push_str(name);
            s.push(')');
        }
        ItemKind::Enum { name, variants } => {
            s.push_str("(enum ");
            s.push_str(name);
            for v in variants {
                s.push(' ');
                s.push_str(v);
            }
            s.push(')');
        }
        ItemKind::Impl(imp) => {
            s.push_str("(impl ");
            if let Some(tr) = &imp.of_trait {
                s.push_str(tr);
                s.push_str(" for ");
            }
            s.push_str(&imp.self_ty);
            for it in &imp.items {
                s.push(' ');
                dump_item(it, s);
            }
            s.push(')');
        }
        ItemKind::Trait { name, items } => {
            s.push_str("(trait ");
            s.push_str(name);
            for it in items {
                s.push(' ');
                dump_item(it, s);
            }
            s.push(')');
        }
        ItemKind::Mod { name, items } => {
            s.push_str("(mod ");
            s.push_str(name);
            if let Some(items) = items {
                for it in items {
                    s.push(' ');
                    dump_item(it, s);
                }
            }
            s.push(')');
        }
        ItemKind::Use { bindings } => {
            s.push_str("(use");
            for b in bindings {
                s.push(' ');
                s.push_str(&b.path.join("::"));
                if b.alias != *b.path.last().unwrap_or(&String::new()) {
                    s.push_str("=>");
                    s.push_str(&b.alias);
                }
            }
            s.push(')');
        }
        ItemKind::Const { name, .. } => {
            s.push_str("(const ");
            s.push_str(name);
            s.push(')');
        }
        ItemKind::Static { name, .. } => {
            s.push_str("(static ");
            s.push_str(name);
            s.push(')');
        }
        ItemKind::TypeAlias { name } => {
            s.push_str("(type ");
            s.push_str(name);
            s.push(')');
        }
        ItemKind::MacroDef { name } => {
            s.push_str("(macro-def ");
            s.push_str(name);
            s.push(')');
        }
        ItemKind::MacroCall { path } => {
            s.push_str("(macro-item ");
            s.push_str(&path.join("::"));
            s.push(')');
        }
        ItemKind::ExternCrate { name } => {
            s.push_str("(extern-crate ");
            s.push_str(name);
            s.push(')');
        }
        ItemKind::Other => s.push_str("(other)"),
    }
}

fn dump_block(b: &Block, s: &mut String) {
    s.push_str("(block");
    for st in &b.stmts {
        s.push(' ');
        match st {
            Stmt::Let { pat, init, .. } => {
                s.push_str("(let ");
                dump_pat(pat, s);
                if let Some(e) = init {
                    s.push(' ');
                    dump_expr(e, s);
                }
                s.push(')');
            }
            Stmt::Item(it) => dump_item(it, s),
            Stmt::Expr(e) => dump_expr(e, s),
            Stmt::Empty => s.push_str("()"),
        }
    }
    s.push(')');
}

fn dump_expr(e: &Expr, s: &mut String) {
    match &e.kind {
        ExprKind::Lit => s.push_str("lit"),
        ExprKind::BoolLit => s.push_str("bool"),
        ExprKind::Path(segs) => {
            s.push_str(&segs.join("::"));
        }
        ExprKind::MethodCall {
            recv, name, args, ..
        } => {
            s.push_str("(. ");
            dump_expr(recv, s);
            s.push(' ');
            s.push_str(name);
            for a in args {
                s.push(' ');
                dump_expr(a, s);
            }
            s.push(')');
        }
        ExprKind::Call { callee, args } => {
            s.push_str("(call ");
            dump_expr(callee, s);
            for a in args {
                s.push(' ');
                dump_expr(a, s);
            }
            s.push(')');
        }
        ExprKind::Field { recv, name } => {
            s.push_str("(field ");
            dump_expr(recv, s);
            s.push(' ');
            s.push_str(name);
            s.push(')');
        }
        ExprKind::Index { recv, index } => {
            s.push_str("(index ");
            dump_expr(recv, s);
            s.push(' ');
            dump_expr(index, s);
            s.push(')');
        }
        ExprKind::Binary { op, lhs, rhs, .. } => {
            s.push('(');
            s.push_str(op);
            s.push(' ');
            dump_expr(lhs, s);
            s.push(' ');
            dump_expr(rhs, s);
            s.push(')');
        }
        ExprKind::Unary { op, expr } => {
            s.push('(');
            s.push_str(op);
            s.push(' ');
            dump_expr(expr, s);
            s.push(')');
        }
        ExprKind::Ref { is_mut, expr } => {
            s.push_str(if *is_mut { "(&mut " } else { "(& " });
            dump_expr(expr, s);
            s.push(')');
        }
        ExprKind::Try { expr } => {
            s.push_str("(? ");
            dump_expr(expr, s);
            s.push(')');
        }
        ExprKind::Cast { expr, ty } => {
            s.push_str("(as ");
            dump_expr(expr, s);
            s.push(' ');
            s.push_str(&ty.idents.join("::"));
            s.push(')');
        }
        ExprKind::Match { scrutinee, arms } => {
            s.push_str("(match ");
            dump_expr(scrutinee, s);
            for arm in arms {
                s.push_str(" (arm ");
                dump_pat(&arm.pat, s);
                if arm.guard.is_some() {
                    s.push_str(" guard");
                }
                s.push(' ');
                dump_expr(&arm.body, s);
                s.push(')');
            }
            s.push(')');
        }
        ExprKind::If { cond, then, els } => {
            s.push_str("(if ");
            dump_expr(cond, s);
            s.push(' ');
            dump_block(then, s);
            if let Some(e) = els {
                s.push(' ');
                dump_expr(e, s);
            }
            s.push(')');
        }
        ExprKind::While { cond, body } => {
            s.push_str("(while ");
            dump_expr(cond, s);
            s.push(' ');
            dump_block(body, s);
            s.push(')');
        }
        ExprKind::For { pat, iter, body } => {
            s.push_str("(for ");
            dump_pat(pat, s);
            s.push(' ');
            dump_expr(iter, s);
            s.push(' ');
            dump_block(body, s);
            s.push(')');
        }
        ExprKind::Loop { body } => {
            s.push_str("(loop ");
            dump_block(body, s);
            s.push(')');
        }
        ExprKind::Block(b) => dump_block(b, s),
        ExprKind::Closure { params, body } => {
            s.push_str("(closure [");
            for (i, p) in params.iter().enumerate() {
                if i > 0 {
                    s.push(' ');
                }
                dump_pat(p, s);
            }
            s.push_str("] ");
            dump_expr(body, s);
            s.push(')');
        }
        ExprKind::Macro { path, .. } => {
            s.push_str("(macro ");
            s.push_str(&path.join("::"));
            s.push(')');
        }
        ExprKind::StructLit { path, fields, .. } => {
            s.push_str("(struct-lit ");
            s.push_str(&path.join("::"));
            for (n, _) in fields {
                s.push(' ');
                s.push_str(n);
            }
            s.push(')');
        }
        ExprKind::Tuple(elems) => {
            s.push_str("(tuple");
            for e in elems {
                s.push(' ');
                dump_expr(e, s);
            }
            s.push(')');
        }
        ExprKind::Array(elems) => {
            s.push_str("(array");
            for e in elems {
                s.push(' ');
                dump_expr(e, s);
            }
            s.push(')');
        }
        ExprKind::Range { start, end } => {
            s.push_str("(range");
            if let Some(e) = start {
                s.push(' ');
                dump_expr(e, s);
            }
            if let Some(e) = end {
                s.push(' ');
                dump_expr(e, s);
            }
            s.push(')');
        }
        ExprKind::Return(v) => {
            s.push_str("(return");
            if let Some(e) = v {
                s.push(' ');
                dump_expr(e, s);
            }
            s.push(')');
        }
        ExprKind::Break(v) => {
            s.push_str("(break");
            if let Some(e) = v {
                s.push(' ');
                dump_expr(e, s);
            }
            s.push(')');
        }
        ExprKind::Continue => s.push_str("(continue)"),
        ExprKind::CondLet { pat, expr } => {
            s.push_str("(let-cond ");
            dump_pat(pat, s);
            s.push(' ');
            dump_expr(expr, s);
            s.push(')');
        }
        ExprKind::Opaque => s.push_str("opaque"),
    }
}

fn dump_pat(p: &Pat, s: &mut String) {
    match &p.kind {
        PatKind::Wild => s.push('_'),
        PatKind::Path(segs) => s.push_str(&segs.join("::")),
        PatKind::TupleStruct(segs, elems) => {
            s.push('(');
            s.push_str(&segs.join("::"));
            for e in elems {
                s.push(' ');
                dump_pat(e, s);
            }
            s.push(')');
        }
        PatKind::Struct(segs, elems) => {
            s.push('(');
            s.push_str(&segs.join("::"));
            s.push_str("{}");
            for e in elems {
                s.push(' ');
                dump_pat(e, s);
            }
            s.push(')');
        }
        PatKind::Binding(name, sub) => {
            s.push_str(name);
            if let Some(sub) = sub {
                s.push('@');
                dump_pat(sub, s);
            }
        }
        PatKind::Lit => s.push_str("lit"),
        PatKind::Tuple(elems) => {
            s.push_str("(tuple-pat");
            for e in elems {
                s.push(' ');
                dump_pat(e, s);
            }
            s.push(')');
        }
        PatKind::Slice(elems) => {
            s.push_str("(slice-pat");
            for e in elems {
                s.push(' ');
                dump_pat(e, s);
            }
            s.push(')');
        }
        PatKind::Ref(inner) => {
            s.push('&');
            dump_pat(inner, s);
        }
        PatKind::Or(elems) => {
            s.push_str("(or");
            for e in elems {
                s.push(' ');
                dump_pat(e, s);
            }
            s.push(')');
        }
        PatKind::Range => s.push_str("range"),
        PatKind::Rest => s.push_str(".."),
        PatKind::Opaque => s.push_str("opaque-pat"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_ok(src: &str) -> Ast {
        let ast = parse(&lex(src).tokens);
        assert!(ast.errors.is_empty(), "parse errors: {:?}", ast.errors);
        ast
    }

    #[test]
    fn string_literal_with_operator_contents_is_not_an_operator() {
        // Token text of a `Str` is the contents without quotes, so `"*"`
        // must not be mistaken for a deref and `"("` must not desync
        // balance counting inside macro bodies.
        let ast = parse_ok(
            "fn f(norm: f64) -> &'static str {\n    let mark = if norm >= 0.95 { \"*\" } else { \"\" };\n    println!(\"({mark})\");\n    match mark { \"*\" => \"sat\", \"-\" => \"neg\", _ => mark }\n}",
        );
        let d = dump(&ast);
        assert!(d.contains("(if"), "{d}");
        assert!(d.contains("(match"), "{d}");
    }

    #[test]
    fn struct_literal_fields_may_carry_cfg_attrs() {
        let ast = parse_ok(
            "fn f() -> Simulator {\n    Simulator {\n        now: 0,\n        #[cfg(feature = \"strict-invariants\")]\n        ledger_injected: 0,\n        queue: Vec::new(),\n    }\n}",
        );
        let d = dump(&ast);
        assert!(
            d.contains("(struct-lit Simulator now ledger_injected queue)"),
            "{d}"
        );
    }

    #[test]
    fn fn_with_params_and_body() {
        let ast = parse_ok("pub fn add(a: u32, b: u32) -> u32 { a + b }");
        assert_eq!(
            dump(&ast),
            "(fn add pub (params a:u32 b:u32) (block (+ a b)))"
        );
    }

    #[test]
    fn method_chain_and_closure() {
        let ast =
            parse_ok("fn f(v: &[f64]) { v.iter().min_by(|a, b| a.partial_cmp(b).unwrap()); }");
        let d = dump(&ast);
        assert!(d.contains("partial_cmp"), "{d}");
        assert!(d.contains("(closure"), "{d}");
    }

    #[test]
    fn match_with_wildcard_and_guard() {
        let ast = parse_ok(
            "fn f(k: EventKind) -> u32 { match k { EventKind::A => 1, EventKind::B(x) if x > 2 => 2, _ => 0 } }",
        );
        let d = dump(&ast);
        assert!(d.contains("(arm EventKind::A lit)"), "{d}");
        assert!(d.contains("guard"), "{d}");
        assert!(d.contains("(arm _ lit)"), "{d}");
    }

    #[test]
    fn generics_with_double_close() {
        let ast = parse_ok(
            "fn f() -> Vec<Vec<u32>> { let x: BTreeMap<u32, Vec<u64>> = BTreeMap::new(); x.values().map(|v| v.len()).collect::<Vec<usize>>(); Vec::new() }",
        );
        assert!(dump(&ast).contains("collect"));
    }

    #[test]
    fn struct_literal_vs_block() {
        let ast = parse_ok("fn f() { if x { g(); } let p = Point { x: 1, y: 2 }; }");
        let d = dump(&ast);
        assert!(d.contains("(if x"), "{d}");
        assert!(d.contains("(struct-lit Point x y)"), "{d}");
    }

    #[test]
    fn labeled_loops_and_let_else() {
        let ast = parse_ok(
            "fn f() { 'outer: while a < b { break 'outer; } let Some(x) = opt else { return; }; }",
        );
        let d = dump(&ast);
        assert!(d.contains("(while"), "{d}");
        assert!(d.contains("(break)"), "{d}");
    }

    #[test]
    fn use_trees_flatten() {
        let ast = parse_ok("use std::collections::{BTreeMap, BTreeSet as Set};\nuse a::b::*;");
        let d = dump(&ast);
        assert!(d.contains("std::collections::BTreeMap"), "{d}");
        assert!(d.contains("std::collections::BTreeSet=>Set"), "{d}");
        assert!(d.contains("a::b=>*") || d.contains("a::b::*"), "{d}");
    }

    #[test]
    fn impl_trait_for_type() {
        let ast = parse_ok(
            "impl std::fmt::Display for SimTime { fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write!(f, \"x\") } }",
        );
        let d = dump(&ast);
        assert!(d.starts_with("(impl Display for SimTime"), "{d}");
    }

    #[test]
    fn enum_variants_collected() {
        let ast = parse_ok("pub enum E { A, B(u32), C { x: u8 }, D = 4 }");
        assert_eq!(dump(&ast), "(enum E A B C D)");
    }

    #[test]
    fn ranges_and_casts() {
        let ast = parse_ok("fn f() { for i in 0..n { g(i as f64 / 1e6); } }");
        let d = dump(&ast);
        assert!(d.contains("(range lit n)"), "{d}");
        assert!(d.contains("(as i f64)"), "{d}");
    }

    #[test]
    fn macro_calls_are_opaque() {
        let ast =
            parse_ok("fn f() { assert_eq!(a, b); let v = vec![1, 2]; panic!(\"boom {x}\"); }");
        let d = dump(&ast);
        assert!(d.contains("(macro assert_eq)"), "{d}");
        assert!(d.contains("(macro vec)"), "{d}");
        assert!(d.contains("(macro panic)"), "{d}");
    }

    #[test]
    fn cfg_gated_items_parse() {
        let ast = parse_ok(
            "#[cfg(test)]\nmod tests {\n    use super::*;\n    #[test]\n    fn t() { assert!(true); }\n}",
        );
        let d = dump(&ast);
        assert!(d.contains("(mod tests"), "{d}");
        assert!(d.contains("(fn t"), "{d}");
    }
}
