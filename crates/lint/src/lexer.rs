//! A minimal Rust lexer — just enough structure for tidy-style rules.
//!
//! The scanner works offline and dependency-free (no `syn`, no `proc-macro2`):
//! it splits a source file into identifier / number / punctuation / string
//! tokens with exact line:col spans, collects comments separately (waivers
//! live in comments), and never confuses rule patterns with text inside
//! string literals or doc comments. It understands the token-level corners
//! that matter for that guarantee: nested block comments, raw strings,
//! byte strings, char literals vs lifetimes, and float vs integer literals.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`let`, `as`, `HashMap`, ...).
    Ident,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `0.`, `1e9`, `2f64`).
    Float,
    /// Punctuation, longest-match (`==`, `!=`, `::`, `->`, `=>`, `..=`, ...).
    Punct,
    /// Lifetime (`'a`) — kept distinct so `'a` is never read as a char.
    Lifetime,
    /// String / char / byte-string literal; `text` holds the *contents*
    /// (without quotes), so rules can inspect e.g. `expect("...")` messages.
    Str,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

/// A comment (line or block) with the 1-based position of its `//` / `/*`.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// Lex result for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, off: usize) -> Option<char> {
        self.chars.get(self.i + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Multi-character punctuation, longest first so greedy matching works.
const PUNCTS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "=>", "->", "::", "..", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lex `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.comments.push(Comment { text, line });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0u32;
            while let Some(ch) = cur.peek(0) {
                if ch == '/' && cur.peek(1) == Some('*') {
                    depth += 1;
                    text.push_str("/*");
                    cur.bump();
                    cur.bump();
                } else if ch == '*' && cur.peek(1) == Some('/') {
                    depth -= 1;
                    text.push_str("*/");
                    cur.bump();
                    cur.bump();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(ch);
                    cur.bump();
                }
            }
            out.comments.push(Comment { text, line });
            continue;
        }
        // Identifiers — including raw-string / byte-string prefixes.
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if is_ident_continue(ch) {
                    text.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
            let next = cur.peek(0);
            // Byte-char literal: `b'{'` — consume the tail like a char
            // literal so the `b` never escapes as a stray ident into
            // pattern/expr position (match arms like `Some(b',')`).
            if text == "b" && next == Some('\'') {
                cur.bump(); // opening '
                let content = lex_char_tail(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: content,
                    line,
                    col,
                });
                continue;
            }
            let is_str_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb")
                && (next == Some('"') || (text != "b" && next == Some('#')));
            if is_str_prefix {
                let raw = text.contains('r');
                if let Some(content) = lex_string_tail(&mut cur, raw) {
                    out.tokens.push(Token {
                        kind: TokenKind::Str,
                        text: content,
                        line,
                        col,
                    });
                    continue;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let (text, is_float) = lex_number(&mut cur);
            out.tokens.push(Token {
                kind: if is_float {
                    TokenKind::Float
                } else {
                    TokenKind::Int
                },
                text,
                line,
                col,
            });
            continue;
        }
        // Cooked strings.
        if c == '"' {
            if let Some(content) = lex_string_tail(&mut cur, false) {
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: content,
                    line,
                    col,
                });
            }
            continue;
        }
        // Lifetimes vs char literals.
        if c == '\'' {
            if let Some(n1) = cur.peek(1) {
                let lifetime = is_ident_start(n1) && {
                    // 'a, 'static, ... — a lifetime unless the ident run is a
                    // single char immediately closed by another quote ('x').
                    let mut j = 2;
                    while cur.peek(j).is_some_and(is_ident_continue) {
                        j += 1;
                    }
                    cur.peek(j) != Some('\'')
                };
                if lifetime {
                    cur.bump(); // '
                    let mut text = String::from("'");
                    while cur.peek(0).is_some_and(is_ident_continue) {
                        text.push(cur.bump().expect("peeked char"));
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text,
                        line,
                        col,
                    });
                    continue;
                }
            }
            // Char literal.
            cur.bump(); // opening '
            let content = lex_char_tail(&mut cur);
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: content,
                line,
                col,
            });
            continue;
        }
        // Punctuation, longest match first.
        let mut matched = None;
        for p in PUNCTS {
            let plen = p.chars().count();
            if (0..plen).all(|k| cur.peek(k) == p.chars().nth(k)) {
                matched = Some(*p);
                break;
            }
        }
        if let Some(p) = matched {
            for _ in 0..p.chars().count() {
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: p.to_string(),
                line,
                col,
            });
        } else {
            cur.bump();
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                line,
                col,
            });
        }
    }
    out
}

/// Consume a string literal starting at the cursor (at `"` for cooked, at
/// `#`/`"` after an `r`/`br` prefix for raw). Returns the contents.
/// Consume the body and closing quote of a (byte-)char literal whose opening
/// `'` has already been bumped. Escapes keep their backslash verbatim.
fn lex_char_tail(cur: &mut Cursor) -> String {
    let mut content = String::new();
    while let Some(ch) = cur.peek(0) {
        if ch == '\\' {
            content.push(ch);
            cur.bump();
            if let Some(esc) = cur.bump() {
                content.push(esc);
            }
        } else if ch == '\'' {
            cur.bump();
            break;
        } else {
            content.push(ch);
            cur.bump();
        }
    }
    content
}

fn lex_string_tail(cur: &mut Cursor, raw: bool) -> Option<String> {
    let mut hashes = 0usize;
    if raw {
        while cur.peek(0) == Some('#') {
            hashes += 1;
            cur.bump();
        }
    }
    if cur.peek(0) != Some('"') {
        return None;
    }
    cur.bump(); // opening quote
    let mut content = String::new();
    while let Some(ch) = cur.peek(0) {
        if !raw && ch == '\\' {
            content.push(ch);
            cur.bump();
            if let Some(esc) = cur.bump() {
                content.push(esc);
            }
            continue;
        }
        if ch == '"' {
            if raw {
                // Need `"` followed by exactly `hashes` hashes.
                let matches_close = (0..hashes).all(|k| cur.peek(1 + k) == Some('#'));
                if matches_close {
                    cur.bump();
                    for _ in 0..hashes {
                        cur.bump();
                    }
                    return Some(content);
                }
                content.push(ch);
                cur.bump();
                continue;
            }
            cur.bump();
            return Some(content);
        }
        content.push(ch);
        cur.bump();
    }
    Some(content) // unterminated: tolerate, return what we saw
}

/// Consume a numeric literal; returns (text, is_float).
fn lex_number(cur: &mut Cursor) -> (String, bool) {
    let mut text = String::new();
    let mut is_float = false;
    // Radix prefixes never produce floats.
    if cur.peek(0) == Some('0')
        && matches!(cur.peek(1), Some('x') | Some('X') | Some('o') | Some('b'))
    {
        text.push(cur.bump().expect("peeked char"));
        text.push(cur.bump().expect("peeked char"));
        while cur
            .peek(0)
            .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
        {
            text.push(cur.bump().expect("peeked char"));
        }
        // Suffix (u8, i64, usize, ...).
        while cur.peek(0).is_some_and(is_ident_continue) {
            text.push(cur.bump().expect("peeked char"));
        }
        return (text, false);
    }
    while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
        text.push(cur.bump().expect("peeked char"));
    }
    // Fractional part: a `.` belongs to the number unless it starts a range
    // (`1..2`) or a method/field access (`1.max(2)`).
    if cur.peek(0) == Some('.')
        && cur.peek(1) != Some('.')
        && !cur.peek(1).is_some_and(is_ident_start)
    {
        is_float = true;
        text.push(cur.bump().expect("peeked char"));
        while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            text.push(cur.bump().expect("peeked char"));
        }
    }
    // Exponent.
    if matches!(cur.peek(0), Some('e') | Some('E')) {
        let sign = matches!(cur.peek(1), Some('+') | Some('-'));
        let digit_at = if sign { 2 } else { 1 };
        if cur.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            text.push(cur.bump().expect("peeked char"));
            if sign {
                text.push(cur.bump().expect("peeked char"));
            }
            while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                text.push(cur.bump().expect("peeked char"));
            }
        }
    }
    // Type suffix.
    let mut suffix = String::new();
    while cur.peek(0).is_some_and(is_ident_continue) {
        suffix.push(cur.bump().expect("peeked char"));
    }
    if suffix == "f32" || suffix == "f64" {
        is_float = true;
    }
    text.push_str(&suffix);
    (text, is_float)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn floats_vs_ints_vs_tuple_access() {
        let t = kinds("let x = 1.0; let y = v.0; let z = 1e9; let w = 0x1E;");
        assert!(t.contains(&(TokenKind::Float, "1.0".into())));
        assert!(t.contains(&(TokenKind::Float, "1e9".into())));
        assert!(t.contains(&(TokenKind::Int, "0".into())));
        assert!(t.contains(&(TokenKind::Int, "0x1E".into())));
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let l = lex("// HashMap in comment\nlet s = \"HashMap::new()\"; /* unwrap() */");
        assert!(l
            .tokens
            .iter()
            .all(|t| t.kind != TokenKind::Ident || t.text != "HashMap"));
        assert_eq!(l.comments.len(), 2);
        assert!(l.tokens.iter().any(|t| t.kind == TokenKind::Str));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let l = lex(r####"fn f<'a>(s: &'a str) { let r = r#"un"wrap()"#; }"####);
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text.contains("un\"wrap")));
    }

    /// Regression: `b'{'` used to lex as Ident(`b`) + a stray char literal,
    /// which desynced the parser in match patterns (`Some(b',') => ..`) and
    /// spewed E1 parse errors over any byte-level parser in the workspace.
    #[test]
    fn byte_char_literals_lex_as_one_token() {
        let t = kinds(r"match c { Some(b'{') => x, Some(b'\n') => y, _ => z }");
        assert!(t.contains(&(TokenKind::Str, "{".into())));
        assert!(t.contains(&(TokenKind::Str, r"\n".into())));
        assert!(!t.contains(&(TokenKind::Ident, "b".into())));
        // Byte *strings* still lex through the string-prefix path.
        let t = kinds(r##"let s = b"ok"; let r = br#"raw"#;"##);
        assert!(t.contains(&(TokenKind::Str, "ok".into())));
        assert!(t.contains(&(TokenKind::Str, "raw".into())));
    }

    #[test]
    fn char_literal_not_lifetime() {
        let l = lex("let c = 'x'; let n = '\\n';");
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            2
        );
    }

    #[test]
    fn positions_are_one_based() {
        let l = lex("a\n  bb");
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].col), (2, 3));
    }

    #[test]
    fn greedy_punct() {
        let t = kinds("a == b != c => d .. e ..= f :: g");
        let puncts: Vec<String> = t
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "=>", "..", "..=", "::"]);
    }
}
