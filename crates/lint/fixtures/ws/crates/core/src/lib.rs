//! M1 fixtures: wildcard arms over workspace enums.

pub enum Phase {
    Start,
    Run,
    Done,
}

pub fn code(p: Phase) -> u32 {
    match p {
        Phase::Start => 0,
        _ => 1,
    }
}

pub fn code_waived(p: Phase) -> u32 {
    match p {
        Phase::Start => 0,
        // pnet-tidy: allow(M1) -- fixture: intentionally collapsed arms
        _ => 1,
    }
}
