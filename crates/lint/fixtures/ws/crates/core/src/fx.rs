//! Effect-lattice fixtures: one fn per lattice point, plus transitive
//! propagation and the local-closure precision case. No rule findings —
//! these exist for the `effects` dump snapshot.

pub struct Queue {
    items: Vec<u32>,
}

impl Queue {
    pub fn push_item(&mut self, x: u32) {
        self.items.push(x);
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }
}

pub fn drain_into(q: &mut Queue, out: &mut Vec<u32>) {
    while let Some(x) = q.items.pop() {
        out.push(x);
    }
}

pub fn tally(cell: &std::cell::RefCell<u32>) -> u32 {
    *cell.borrow_mut() += 1;
    cell.take()
}

pub fn apply_twice(f: impl Fn(u32) -> u32, x: u32) -> u32 {
    f(f(x))
}

pub fn feed(q: &mut Queue) {
    Queue::push_item(q, 1);
}

pub fn local_closure_stays_first_order(x: u32) -> u32 {
    let double = |v: u32| v * 2;
    double(x)
}
