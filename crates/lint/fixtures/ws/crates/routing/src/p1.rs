//! P1 fixtures: panic-path propagation and its two waiver flavours —
//! at the public surface, and at the panic site (origin).

fn helper_unchecked(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn head(v: &[u32]) -> u32 {
    helper_unchecked(v)
}

// pnet-tidy: allow(P1) -- fixture: waived at the public surface
pub fn head_waived(v: &[u32]) -> u32 {
    helper_unchecked(v)
}

fn helper_waived(v: &[u32]) -> u32 {
    // pnet-tidy: allow(C1, P1) -- fixture: callers guarantee non-empty
    *v.first().unwrap()
}

pub fn quiet(v: &[u32]) -> u32 {
    helper_waived(v)
}
