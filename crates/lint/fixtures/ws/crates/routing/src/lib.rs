//! D1/D2 fixtures: unordered containers and wall-clock time in routing.

pub type Table = std::collections::HashMap<u32, u32>;

// pnet-tidy: allow(D1) -- fixture: waived unordered set, lookup only
pub type Seen = std::collections::HashSet<u32>;

pub fn elapsed_ns(t0: std::time::Instant) -> u128 {
    t0.elapsed().as_nanos()
}
