//! Y2 fixtures: RMW-derived nondeterminism inside parallel closures — an
//! active indexed read keyed off a `fetch_add` ticket, a waived twin, and a
//! clean index-derived closure that must stay finding-free.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct Par;

impl Par {
    pub fn map_indexed(self, n: usize, f: impl Fn(usize) -> usize) -> Vec<usize> {
        (0..n).map(f).collect()
    }
}

pub fn racy(n: usize, c: &AtomicUsize, xs: &[usize; 8]) -> Vec<usize> {
    let seed = c.fetch_add(1, Ordering::Relaxed);
    Par.map_indexed(n, |i| xs[(seed + i) % 8])
}

pub fn racy_waived(n: usize, c: &AtomicUsize, xs: &[usize; 8]) -> Vec<usize> {
    // pnet-tidy: allow(Y2) -- fixture: ticket only offsets a cyclic probe
    let seed = c.fetch_add(1, Ordering::Relaxed);
    Par.map_indexed(n, |i| xs[(seed + i) % 8])
}

pub fn clean(n: usize, xs: &[usize; 8]) -> Vec<usize> {
    Par.map_indexed(n, |i| xs[i % 8])
}
