//! Y3 fixtures: interprocedural shared-capture mutation across spawned
//! closures — an active violation whose mutation hides one call deep, a
//! twin waived at the effect origin, and a read-only observer that must
//! stay finding-free.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct Scope;

impl Scope {
    pub fn spawn(&self, f: impl FnOnce()) {
        f()
    }
}

pub struct Shared {
    cell: AtomicUsize,
}

impl Shared {
    pub fn record(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }
    pub fn record_waived(&self) {
        // pnet-tidy: allow(Y3) -- fixture: sanctioned shared counter
        self.cell.fetch_add(1, Ordering::Relaxed);
    }
    pub fn peek(&self) -> usize {
        self.cell.load(Ordering::Relaxed)
    }
}

pub fn racy(s: &Scope, sh: &Shared) {
    s.spawn(|| sh.record());
}

pub fn racy_waived(s: &Scope, sh: &Shared) {
    s.spawn(|| sh.record_waived());
}

pub fn clean(s: &Scope, sh: &Shared) {
    s.spawn(|| {
        let seen = sh.peek();
        let _ = seen;
    });
}
