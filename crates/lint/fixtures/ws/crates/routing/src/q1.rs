//! Q1 fixtures: unstable sorts — active, waived, and allowlisted `_by_key`
//! forms, plus the two provably-safe shapes that must stay finding-free.

pub fn ranked(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    v.sort_unstable_by_key(|p| p.0);
    v
}

pub fn ranked_waived(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    // pnet-tidy: allow(Q1) -- fixture: first components unique by construction
    v.sort_unstable_by_key(|p| p.0);
    v
}

pub fn ranked_allowlisted(mut w: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    w.sort_unstable_by_key(|p| p.1);
    w
}

pub fn whole_element(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    v.sort_unstable();
    v
}

pub fn tie_broken(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    v.sort_unstable_by(|a, b| a.cmp(b));
    v
}
