//! Y1 fixtures: publication-protocol orderings — an active Relaxed load on
//! a publication atomic, a waived one, an allowlisted Relaxed store, and an
//! all-Relaxed statistics counter that must stay finding-free.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct Seq {
    len: AtomicUsize,
}

impl Seq {
    pub fn snapshot(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }
    pub fn frontier(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }
    pub fn publish(&self, n: usize) {
        self.len.store(n, Ordering::Release);
    }
}

pub struct SeqWaived {
    len_w: AtomicUsize,
}

impl SeqWaived {
    pub fn frontier_waived(&self) -> usize {
        // pnet-tidy: allow(Y1) -- fixture: single-writer invariant documented
        self.len_w.load(Ordering::Relaxed)
    }
    pub fn publish_waived(&self, n: usize) {
        self.len_w.store(n, Ordering::Release);
    }
}

pub struct SeqAllowed {
    len_a: AtomicUsize,
}

impl SeqAllowed {
    pub fn snapshot_allowed(&self) -> usize {
        self.len_a.load(Ordering::Acquire)
    }
    pub fn publish_allowed(&self, n: usize) {
        self.len_a.store(n, Ordering::Relaxed);
    }
}

pub struct Stats {
    hits: AtomicUsize,
}

impl Stats {
    pub fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
    pub fn total(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }
}
