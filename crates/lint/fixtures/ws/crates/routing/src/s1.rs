//! S1 fixtures: parallel-closure capture discipline — an active violation,
//! one waived at the capture site, one allowlisted, and a clean per-index
//! closure that must stay finding-free.

pub struct Par;

impl Par {
    pub fn map_indexed(self, n: usize, f: impl Fn(usize) -> usize) -> Vec<usize> {
        (0..n).map(f).collect()
    }
}

pub fn racy(n: usize) -> Vec<usize> {
    let mut hits = 0;
    Par.map_indexed(n, |i| {
        hits += 1;
        i + hits
    })
}

pub fn racy_waived(n: usize) -> Vec<usize> {
    let mut hits = 0;
    Par.map_indexed(n, |i| {
        // pnet-tidy: allow(S1) -- fixture: order-free counter, never read back
        hits += 1;
        i + hits
    })
}

pub fn racy_allowlisted(n: usize) -> Vec<usize> {
    let mut total = 0;
    Par.map_indexed(n, |i| {
        total += i;
        total
    })
}

pub fn clean(n: usize, scale: usize) -> Vec<usize> {
    Par.map_indexed(n, |i| i * scale)
}
