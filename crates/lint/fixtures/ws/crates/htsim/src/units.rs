//! U1 fixtures: raw unit constructors and inline conversion constants.

pub fn raw_ctor() -> SimTime {
    SimTime(5)
}

pub fn fct_to_us(fct_ps: u64) -> f64 {
    fct_ps as f64 / 1e6
}

pub fn fct_to_us_waived(fct_ps: u64) -> f64 {
    // pnet-tidy: allow(U1) -- fixture: this is the checked helper itself
    fct_ps as f64 / 1e6
}
