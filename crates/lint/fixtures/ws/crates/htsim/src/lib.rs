//! C1/C2 fixtures: panics and narrowing casts in the simulator.

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn checked_first(v: &[u32]) -> u32 {
    *v.first().expect("invariant: caller guarantees non-empty")
}

pub fn narrow(x: u64) -> u32 {
    x as u32
}

pub fn boom() -> u32 {
    panic!("fixture: allowlisted panic site")
}
