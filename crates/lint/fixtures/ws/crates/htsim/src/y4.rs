//! Y4 fixtures: `// SAFETY:` discipline — an active undocumented `unsafe`
//! block, a documented one, and a waived one.

pub fn naked(p: *const u64) -> u64 {
    unsafe { *p }
}

pub fn documented(p: *const u64) -> u64 {
    // SAFETY: fixture — callers pass a live, aligned pointer.
    unsafe { *p }
}

pub fn waived(p: *const u64) -> u64 {
    // pnet-tidy: allow(Y4) -- fixture: waived undocumented block
    unsafe { *p }
}
