//! T1 fixtures: telemetry observation-purity — an active violation, one
//! waived at the effect origin, and one allowlisted.

pub fn export_now(t_ps: u64) -> u64 {
    println!("t={t_ps}");
    t_ps
}

pub fn export_waived(t_ps: u64) -> u64 {
    // pnet-tidy: allow(T1) -- fixture: sanctioned stdout exporter
    println!("t={t_ps}");
    t_ps
}

pub fn export_allowlisted(t_ps: u64) -> u64 {
    eprintln!("t={t_ps}");
    t_ps
}

pub fn pure_formatter(t_ps: u64) -> String {
    format!("t={t_ps}")
}
