//! O1 fixtures: float reductions over parallel-produced collections — an
//! active out-of-order consumption, one waived, one allowlisted, and the
//! blessed in-order form that must stay finding-free.

pub struct Par;

impl Par {
    pub fn map_indexed(self, n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..n).map(f).collect()
    }
}

pub fn skewed(n: usize) -> f64 {
    let xs = Par.map_indexed(n, |i| [0.5, 1.5][i % 2]);
    xs.iter().rev().fold(0.0, |acc, x| acc + x)
}

pub fn skewed_waived(n: usize) -> f64 {
    let xs = Par.map_indexed(n, |i| [0.5, 1.5][i % 2]);
    // pnet-tidy: allow(O1) -- fixture: summands proven order-free
    xs.iter().rev().fold(0.0, |acc, x| acc + x)
}

pub fn skewed_allowlisted(n: usize) -> f64 {
    let ys = Par.map_indexed(n, |i| [2.5, 0.25][i % 2]);
    ys.iter().rev().fold(0.0, |acc, x| acc + x)
}

pub fn ordered(n: usize) -> f64 {
    let xs = Par.map_indexed(n, |i| [0.5, 1.5][i % 2]);
    xs.iter().fold(0.0, |acc, x| acc + x)
}
