//! F1 fixtures: partial_cmp-based float ordering.

pub fn best(v: &[f64]) -> f64 {
    *v.iter()
        .min_by(|a, b| a.partial_cmp(b).expect("invariant: no NaNs here"))
        .expect("invariant: fixture slice is non-empty")
}

pub fn best_waived(v: &[f64]) -> f64 {
    *v.iter()
        // pnet-tidy: allow(F1) -- fixture: inputs proven NaN-free
        .min_by(|a, b| a.partial_cmp(b).expect("invariant: no NaNs here"))
        .expect("invariant: fixture slice is non-empty")
}
