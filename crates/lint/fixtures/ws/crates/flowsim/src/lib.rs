//! D3 fixtures: float equality in solver code, plus a dead waiver.

pub fn converged(a: f64, b: f64) -> bool {
    a == b
}

pub fn is_sentinel(x: f64) -> bool {
    // pnet-tidy: allow(D3) -- fixture: exact sentinel compare is intended
    x == -1.0
}

// pnet-tidy: allow(D2) -- fixture: this waiver suppresses nothing
pub fn noop() {}
