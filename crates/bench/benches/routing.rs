//! Criterion benches: routing algorithms (BFS, ECMP enumeration, Yen KSP,
//! cross-plane merge).

use criterion::{criterion_group, criterion_main, Criterion};
use pnet_routing::{bfs, ksp, PlaneGraph, RouteAlgo, Router};
use pnet_topology::{assemble_homogeneous, FatTree, Jellyfish, LinkProfile, PlaneId, RackId};
use std::hint::black_box;

fn bench_bfs(c: &mut Criterion) {
    let net = assemble_homogeneous(&Jellyfish::paper_686(1), 1, &LinkProfile::paper_default());
    let pg = PlaneGraph::build(&net, PlaneId(0));
    c.bench_function("all-pairs rack hops, jellyfish 98 tors", |b| {
        b.iter(|| black_box(bfs::rack_hop_matrix(&pg)))
    });
}

fn bench_ecmp_enumeration(c: &mut Criterion) {
    let net = assemble_homogeneous(&FatTree::three_tier(16), 1, &LinkProfile::paper_default());
    let pg = PlaneGraph::build(&net, PlaneId(0));
    c.bench_function("ECMP path enumeration, fat tree k=16 (64 paths)", |b| {
        b.iter(|| black_box(bfs::all_shortest_paths(&pg, RackId(0), RackId(127), 64).len()))
    });
}

fn bench_yen(c: &mut Criterion) {
    let net = assemble_homogeneous(&Jellyfish::paper_686(1), 1, &LinkProfile::paper_default());
    let pg = PlaneGraph::build(&net, PlaneId(0));
    let mut group = c.benchmark_group("yen-ksp jellyfish 98 tors");
    for k in [8usize, 32] {
        group.bench_function(format!("k={k}"), |b| {
            b.iter(|| black_box(ksp(&pg, RackId(0), RackId(60), k).len()))
        });
    }
    group.finish();
}

fn bench_cross_plane_merge(c: &mut Criterion) {
    let net = assemble_homogeneous(
        &Jellyfish::new(64, 6, 4, 3),
        4,
        &LinkProfile::paper_default(),
    );
    c.bench_function("k_best_across_planes k=32 (4 planes, cold cache)", |b| {
        b.iter(|| {
            let router = Router::new(&net, RouteAlgo::Ksp { k: 16 });
            black_box(router.k_best_across_planes(RackId(0), RackId(40), 32).len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_bfs, bench_ecmp_enumeration, bench_yen, bench_cross_plane_merge
}
criterion_main!(benches);
