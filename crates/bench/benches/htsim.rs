//! Criterion benches: packet-simulator event throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use pnet_htsim::{run_to_completion, CcAlgo, FlowSpec, SimConfig, Simulator};
use pnet_routing::{host_route, RouteAlgo, Router};
use pnet_topology::{assemble_homogeneous, FatTree, HostId, LinkProfile, Network, RackId};
use std::hint::black_box;

type FlowPlan = (HostId, HostId, Vec<Vec<pnet_topology::LinkId>>);

fn setup() -> (Network, Vec<FlowPlan>) {
    let net = assemble_homogeneous(&FatTree::three_tier(8), 2, &LinkProfile::paper_default());
    let router = Router::new(&net, RouteAlgo::Ksp { k: 2 });
    let flows: Vec<FlowPlan> = (0..16u32)
        .map(|i| {
            let src = HostId(i);
            let dst = HostId(127 - i);
            let paths =
                router.k_best_across_planes(net.rack_of_host(src), net.rack_of_host(dst), 2);
            let routes = paths
                .iter()
                .filter_map(|p| host_route(&net, src, dst, p))
                .collect();
            (src, dst, routes)
        })
        .collect();
    (net, flows)
}

fn bench_bulk_transfer(c: &mut Criterion) {
    let (net, flows) = setup();
    c.bench_function("16 x 1MB MPTCP flows, fat tree k=8 x2 (events/run)", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&net, SimConfig::default());
            for (src, dst, routes) in &flows {
                sim.start_flow(FlowSpec {
                    src: *src,
                    dst: *dst,
                    size_bytes: 1_000_000,
                    routes: routes.clone(),
                    cc: CcAlgo::Lia,
                    owner_tag: 0,
                });
            }
            run_to_completion(&mut sim);
            black_box(sim.events_dispatched())
        })
    });
}

fn bench_single_packet_rtt(c: &mut Criterion) {
    let (net, flows) = setup();
    let (src, dst, routes) = &flows[0];
    c.bench_function("single-packet flow end to end", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&net, SimConfig::default());
            sim.start_flow(FlowSpec {
                src: *src,
                dst: *dst,
                size_bytes: 1_000,
                routes: routes[..1].to_vec(),
                cc: CcAlgo::Reno,
                owner_tag: 0,
            });
            run_to_completion(&mut sim);
            black_box(sim.records.len())
        })
    });
}

fn bench_incast(c: &mut Criterion) {
    let net = assemble_homogeneous(&FatTree::three_tier(8), 1, &LinkProfile::paper_default());
    let router = Router::new(&net, RouteAlgo::Ksp { k: 1 });
    let routes: Vec<_> = (1..9u32)
        .map(|i| {
            let src = HostId(i * 8);
            let paths = router.k_best_across_planes(net.rack_of_host(src), RackId(0), 1);
            (src, host_route(&net, src, HostId(0), &paths[0]).unwrap())
        })
        .collect();
    c.bench_function("8-to-1 incast with drops and recovery", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&net, SimConfig::default());
            for (src, route) in &routes {
                sim.start_flow(FlowSpec {
                    src: *src,
                    dst: HostId(0),
                    size_bytes: 750_000,
                    routes: vec![route.clone()],
                    cc: CcAlgo::Reno,
                    owner_tag: 0,
                });
            }
            run_to_completion(&mut sim);
            black_box(sim.dropped_packets)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_bulk_transfer, bench_single_packet_rtt, bench_incast
}
criterion_main!(benches);
