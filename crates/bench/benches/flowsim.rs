//! Criterion benches: the flow-level solvers (Garg–Könemann epsilon
//! sensitivity — the DESIGN.md accuracy/speed ablation — and waterfilling).

use criterion::{criterion_group, criterion_main, Criterion};
use pnet_flowsim::{commodity, mcf, throughput};
use pnet_topology::{assemble_homogeneous, FatTree, Jellyfish, LinkProfile};
use pnet_workloads::tm;
use std::hint::black_box;

fn bench_gk_eps(c: &mut Criterion) {
    let net = assemble_homogeneous(
        &Jellyfish::new(16, 6, 4, 1),
        2,
        &LinkProfile::paper_default(),
    );
    let commodities = commodity::permutation(&tm::random_permutation(64, 7));
    let mut group = c.benchmark_group("gk permutation 64 hosts 2 planes");
    for eps in [0.1f64, 0.2] {
        group.bench_function(format!("eps={eps}"), |b| {
            b.iter(|| {
                let sol = mcf::solve(&net, &commodities, &mcf::PathMode::AnyPath, eps);
                black_box(sol.lambda)
            })
        });
    }
    group.finish();
}

fn bench_gk_explicit_paths(c: &mut Criterion) {
    let net = assemble_homogeneous(&FatTree::three_tier(8), 2, &LinkProfile::paper_default());
    let commodities = commodity::permutation(&tm::random_permutation(128, 3));
    c.bench_function("ksp-16 multipath throughput, k=8 fat tree x2", |b| {
        b.iter(|| {
            let (t, _) = throughput::ksp_multipath_throughput(&net, &commodities, 16, 0.15);
            black_box(t)
        })
    });
}

fn bench_waterfilling(c: &mut Criterion) {
    let net = assemble_homogeneous(&FatTree::three_tier(8), 4, &LinkProfile::paper_default());
    let commodities = commodity::all_to_all(128);
    c.bench_function("ECMP max-min waterfilling, all-to-all 128 hosts", |b| {
        b.iter(|| black_box(throughput::ecmp_throughput(&net, &commodities)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gk_eps, bench_gk_explicit_paths, bench_waterfilling
}
criterion_main!(benches);
