//! Criterion benches: topology construction throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use pnet_topology::{assemble_homogeneous, FatTree, Jellyfish, LinkProfile, PlaneBuilder, Xpander};
use std::hint::black_box;

fn bench_fattree(c: &mut Criterion) {
    let base = LinkProfile::paper_default();
    c.bench_function("build fat-tree k=16 (1024 hosts)", |b| {
        b.iter(|| {
            let net = assemble_homogeneous(&FatTree::three_tier(16), 1, &base);
            black_box(net.n_links())
        })
    });
}

fn bench_jellyfish(c: &mut Criterion) {
    let base = LinkProfile::paper_default();
    c.bench_function("build jellyfish 98x7 (686 hosts)", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let net = assemble_homogeneous(&Jellyfish::paper_686(seed), 1, &base);
            black_box(net.n_links())
        })
    });
}

fn bench_parallel_assembly(c: &mut Criterion) {
    let base = LinkProfile::paper_default();
    c.bench_function("assemble 4-plane heterogeneous jellyfish", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let planes: Vec<Jellyfish> =
                (0..4).map(|i| Jellyfish::new(64, 6, 4, seed + i)).collect();
            let refs: Vec<&dyn PlaneBuilder> =
                planes.iter().map(|p| p as &dyn PlaneBuilder).collect();
            let net = pnet_topology::assemble(&refs, &base);
            black_box(net.n_links())
        })
    });
}

fn bench_xpander(c: &mut Criterion) {
    let base = LinkProfile::paper_default();
    c.bench_function("build xpander d=7 lifts=4 (128 tors)", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let net = assemble_homogeneous(&Xpander::new(7, 4, 4, seed), 1, &base);
            black_box(net.n_links())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fattree, bench_jellyfish, bench_parallel_assembly, bench_xpander
}
criterion_main!(benches);
