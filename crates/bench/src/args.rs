//! Minimal command-line parsing for the experiment binaries
//! (`--name value` pairs and boolean `--flag`s; no external dependencies).

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse the process arguments. `--key value` sets a value; a `--key`
    /// followed by another `--...` (or nothing) is a boolean flag.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn from_args<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut args = Args::default();
        let items: Vec<String> = iter.into_iter().collect();
        let mut i = 0;
        while i < items.len() {
            let item = &items[i];
            if let Some(key) = item.strip_prefix("--") {
                if i + 1 < items.len() && !items[i + 1].starts_with("--") {
                    args.values.insert(key.to_string(), items[i + 1].clone());
                    i += 2;
                } else {
                    args.flags.push(key.to_string());
                    i += 1;
                }
            } else {
                eprintln!("ignoring stray argument: {item}");
                i += 1;
            }
        }
        args
    }

    /// Value of `--key`, parsed, or `default`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.values.get(key) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("bad value for --{key}: {v:?}; using default");
                std::process::exit(2)
            }),
            None => default,
        }
    }

    /// Raw string value of `--key`.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Is boolean `--key` present?
    pub fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Comma-separated list of `--key`, or `default`.
    pub fn get_list(&self, key: &str, default: &[u64]) -> Vec<u64> {
        match self.values.get(key) {
            Some(v) => v.split(',').map(|s| parse_size(s.trim())).collect(),
            None => default.to_vec(),
        }
    }
}

/// Parse sizes with k/m/g suffixes ("100k" = 100_000).
pub fn parse_size(s: &str) -> u64 {
    let lower = s.to_ascii_lowercase();
    let (num, mult) = if let Some(n) = lower.strip_suffix('g') {
        (n, 1_000_000_000)
    } else if let Some(n) = lower.strip_suffix('m') {
        (n, 1_000_000)
    } else if let Some(n) = lower.strip_suffix('k') {
        (n, 1_000)
    } else {
        (lower.as_str(), 1)
    };
    let base: f64 = num.parse().unwrap_or_else(|_| {
        eprintln!("bad size: {s:?}");
        std::process::exit(2)
    });
    (base * mult as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_args(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn values_and_flags() {
        let a = args(&["--k", "16", "--csv", "--seed", "7"]);
        assert_eq!(a.get("k", 4usize), 16);
        assert_eq!(a.get("seed", 0u64), 7);
        assert!(a.has("csv"));
        assert!(!a.has("quick"));
        assert_eq!(a.get("missing", 3usize), 3);
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("100k"), 100_000);
        assert_eq!(parse_size("1m"), 1_000_000);
        assert_eq!(parse_size("2.5m"), 2_500_000);
        assert_eq!(parse_size("1g"), 1_000_000_000);
        assert_eq!(parse_size("42"), 42);
    }

    #[test]
    fn lists() {
        let a = args(&["--sizes", "100k,1m,10m"]);
        assert_eq!(
            a.get_list("sizes", &[1]),
            vec![100_000, 1_000_000, 10_000_000]
        );
        assert_eq!(a.get_list("other", &[5, 6]), vec![5, 6]);
    }
}
