//! # pnet-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! DESIGN.md for the index) plus Criterion micro-benchmarks of the
//! substrates. This library holds the shared scaffolding: argument parsing,
//! table/CSV output, and the four-network comparison setups.

pub mod args;
pub mod report;
pub mod setups;

pub use args::Args;
pub use report::{banner, f3, human_bytes, min_index_total, pct, Table};
