//! Extension experiment — incremental expansion (paper section 6.1).
//!
//! "Software-controlled OCSes together with the incremental expansion
//! support of expander-based networks means operators can more easily scale
//! up their network."
//!
//! Setup: start from a 4-plane heterogeneous Jellyfish P-Net and add racks
//! one at a time using the classic Jellyfish splice (each new ToR port pair
//! consumes one existing cable). After each step we check connectivity,
//! mean best-plane hop count, and the rewiring cost in patch-panel
//! operations — showing that growth is cheap and the fabric quality holds.
//!
//! Usage: `exp_expand [--tors 32] [--degree 6] [--hosts-per-tor 2]
//!                    [--planes 4] [--add 12] [--seed 1] [--csv]`

use pnet_bench::{banner, f3, Args, Table};
use pnet_core::analysis;
use pnet_topology::{assemble, jellyfish::expand_rack, Jellyfish, LinkProfile, PlaneBuilder};

fn main() {
    let args = Args::parse();
    let tors: usize = args.get("tors", 32);
    let degree: usize = args.get("degree", 6);
    let hpt: usize = args.get("hosts-per-tor", 2);
    let planes: usize = args.get("planes", 4);
    let add: usize = args.get("add", 12);
    let seed: u64 = args.get("seed", 1);
    let csv = args.has("csv");

    banner(
        "Extension — incremental rack-by-rack expansion (paper section 6.1)",
        &format!(
            "start: {tors} racks x {hpt} hosts, {planes} heterogeneous jellyfish planes \
             (degree {degree}); add {add} racks via cable splicing"
        ),
    );

    let profile = LinkProfile::paper_default();
    let builders: Vec<Jellyfish> = (0..planes)
        .map(|i| Jellyfish::new(tors, degree, hpt, seed + i as u64))
        .collect();
    let refs: Vec<&dyn PlaneBuilder> = builders.iter().map(|b| b as &dyn PlaneBuilder).collect();
    let mut net = assemble(&refs, &profile);

    let mut table = Table::new(
        vec![
            "racks",
            "hosts",
            "mean best-plane hops",
            "splice ops (cumulative)",
            "connected",
        ],
        csv,
    );

    // Each spliced cable = 1 unplug + 2 plugs = 3 panel operations, per
    // plane; degree/2 cables per plane per rack.
    let ops_per_rack = planes * (degree / 2) * 3;
    let mut ops = 0usize;

    let record = |net: &pnet_topology::Network, ops: usize, table: &mut Table| {
        let connected = net.planes().all(|p| net.plane_connects_all_hosts(p));
        table.row(vec![
            net.n_racks().to_string(),
            net.n_hosts().to_string(),
            f3(analysis::mean_hops_best_plane(net)),
            ops.to_string(),
            connected.to_string(),
        ]);
        assert!(connected, "expansion broke connectivity");
    };

    record(&net, ops, &mut table);
    for step in 0..add {
        expand_rack(&mut net, degree, hpt, &profile, seed * 1000 + step as u64);
        ops += ops_per_rack;
        if (step + 1) % 4 == 0 || step + 1 == add {
            record(&net, ops, &mut table);
        }
    }
    table.print();

    println!();
    println!(
        "expected: hop count stays nearly flat as the fabric grows; each rack costs\n\
         a constant {ops_per_rack} patch-panel operations — no forklift, no downtime\n\
         (one plane can be spliced at a time while the others carry traffic)"
    );
}
