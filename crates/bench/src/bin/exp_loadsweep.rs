//! Extension experiment — FCT versus offered load (open-loop Poisson
//! arrivals).
//!
//! The paper evaluates fixed traffic patterns; this extension runs the
//! classic open-loop methodology: flows arrive on a Poisson process with
//! sizes from a published trace, and we sweep the offered load from light
//! to beyond the serial low-bandwidth network's capacity. Load is
//! normalized to the *serial low-bw* aggregate host bandwidth, so every
//! network sees the same absolute traffic; N-plane P-Nets have N x the
//! headroom.
//!
//! Expected: at low load all networks are propagation-limited (hetero
//! slightly ahead on hops); as load approaches (and passes) the serial
//! network's capacity its tail explodes while the P-Nets stay flat until
//! ~N x the load.
//!
//! Usage: `exp_loadsweep [--tors 16] [--degree 5] [--hosts-per-tor 4]
//!                       [--planes 4] [--loads 20,50,80,120] [--ms 10]
//!                       [--trace websearch] [--scale 0.01] [--rto-us 1000]
//!                       [--seed 1] [--csv]`

use pnet_bench::{banner, setups, Args, Table};
use pnet_core::TopologyKind;
use pnet_htsim::apps::OpenLoopDriver;
use pnet_htsim::{metrics, run, SimTime, Simulator};
use pnet_topology::{HostId, NetworkClass};
use pnet_workloads::{PoissonArrivals, Trace};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One (class index, p50 slowdown, p99 slowdown) sweep sample.
type ClassPoint = (usize, f64, f64);

#[allow(clippy::too_many_arguments)]
fn sweep_point(
    topology: TopologyKind,
    class: NetworkClass,
    planes: usize,
    seed: u64,
    trace: Trace,
    scale: f64,
    rho_pct: u64,
    ms: u64,
    rto_us: u64,
) -> ClassPoint {
    let pnet = setups::build(topology, class, planes, seed);
    let n_hosts = pnet.net.n_hosts();
    let policy = setups::single_path_policy(class);
    let factory = setups::make_factory(&pnet.net, pnet.selector(policy));
    let cdf = trace.cdf().scaled(scale);
    let mean_bytes = cdf.mean_bytes();
    // Load normalized to serial low-bw: n_hosts x 100G.
    let capacity = n_hosts as f64 * 100e9;
    let mut arrivals =
        PoissonArrivals::for_load(rho_pct as f64 / 100.0, capacity, mean_bytes, seed ^ 0xABCD);
    let mut pair_rng = StdRng::seed_from_u64(seed ^ 0x1234);
    let mut size_rng = StdRng::seed_from_u64(seed ^ 0x9876);
    let next_flow = Box::new(move || {
        let a = pair_rng.random_range(0..n_hosts as u32);
        let mut b = pair_rng.random_range(0..n_hosts as u32 - 1);
        if b >= a {
            b += 1;
        }
        (HostId(a), HostId(b), cdf.sample(&mut size_rng))
    });
    let next_gap = Box::new(move || SimTime::from_ps(arrivals.next_gap_ps()));

    let mut sim = Simulator::new(&pnet.net, setups::config_with_rto_us(rto_us));
    let stop = SimTime::from_ms(ms);
    let mut driver = OpenLoopDriver::start(&mut sim, factory, next_flow, next_gap, stop);
    // Allow a drain window equal to the arrival window.
    run(&mut sim, &mut driver, Some(stop + stop));
    let fcts = metrics::fcts_us(&driver.completed);
    if fcts.is_empty() {
        return (0, f64::NAN, f64::NAN);
    }
    (
        fcts.len(),
        metrics::percentile(&fcts, 50.0),
        metrics::percentile(&fcts, 99.0),
    )
}

fn main() {
    let args = Args::parse();
    let tors: usize = args.get("tors", 16);
    let degree: usize = args.get("degree", 5);
    let hpt: usize = args.get("hosts-per-tor", 4);
    let planes: usize = args.get("planes", 4);
    let loads = args.get_list("loads", &[20, 50, 80, 120]);
    let ms: u64 = args.get("ms", 5);
    let scale: f64 = args.get("scale", 0.01);
    let rto_us: u64 = args.get("rto-us", 1_000);
    let seed: u64 = args.get("seed", 1);
    let csv = args.has("csv");
    let trace = match args.get_str("trace").unwrap_or("websearch") {
        "websearch" => Trace::Websearch,
        "datamining" => Trace::Datamining,
        "webserver" => Trace::Webserver,
        "cache" => Trace::Cache,
        "hadoop" => Trace::Hadoop,
        other => panic!("unknown trace {other:?}"),
    };

    let topology = TopologyKind::Jellyfish {
        n_tors: tors,
        degree,
        hosts_per_tor: hpt,
    };

    banner(
        "Extension — FCT vs offered load (open-loop Poisson, single-path)",
        &format!(
            "{} hosts, {} planes, {} sizes x{}, load normalized to serial low-bw capacity",
            tors * hpt,
            planes,
            trace.label(),
            scale
        ),
    );

    let classes = setups::classes_for(topology);
    // Run each (load, class) point once.
    let results: Vec<(u64, Vec<ClassPoint>)> = loads
        .iter()
        .map(|&rho| {
            let points = classes
                .iter()
                .map(|&class| {
                    sweep_point(topology, class, planes, seed, trace, scale, rho, ms, rto_us)
                })
                .collect();
            (rho, points)
        })
        .collect();

    for &stat in &["median", "p99", "completed"] {
        println!();
        println!("--- {stat} FCT (us) ---");
        let mut header = vec!["load%".to_string()];
        header.extend(classes.iter().map(|c| c.label().to_string()));
        let mut table = Table::new(header, csv);
        for (rho, points) in &results {
            let mut row = vec![rho.to_string()];
            for &(n, p50, p99) in points {
                row.push(match stat {
                    "median" => format!("{p50:.1}"),
                    "p99" => format!("{p99:.1}"),
                    _ => n.to_string(),
                });
            }
            table.row(row);
        }
        table.print();
    }
    println!();
    println!(
        "expected: serial low-bw tail explodes as load approaches 100%;\n\
         P-Nets stay flat (N x headroom); hetero lowest at light load (hops)"
    );
}
