//! Figure 12: per-worker completion time of each stage of a Hadoop-style
//! sort job (read input / shuffle / write output), single-path routing.
//!
//! Paper setup: 250-host cluster, 100 GB sorted by 32 mappers and 32
//! reducers, 128 MB blocks, 4 concurrent blocks per worker. Paper shape:
//! in the sparse read/write stages parallel networks (especially
//! heterogeneous) cut worker completion times; in the dense shuffle the
//! parallel networks approach serial high-bw, with no extra heterogeneous
//! advantage (collisions on the short paths).
//!
//! Scale note: the default job is the paper's layout scaled to 2 GB total
//! (`--scale 1.0` for the full 100 GB — slow).
//!
//! Usage: `exp_fig12 [--tors 50] [--degree 7] [--hosts-per-tor 5]
//!                   [--planes 4] [--scale 0.02] [--rto-us 1000] [--seed 1]
//!                   [--csv]`
//!
//! The min-RTO defaults to 1 ms because the default job is ~50x smaller
//! than the paper's; use `--rto-us 10000 --scale 1.0` for the paper's exact
//! configuration.

use pnet_bench::{banner, setups, Args, Table};
use pnet_core::TopologyKind;
use pnet_htsim::apps::{ShuffleDriver, Stage, Transfer};
use pnet_htsim::{metrics, run, Simulator};
use pnet_topology::{HostId, NetworkClass};
use pnet_workloads::SortJob;

fn run_job(
    topology: TopologyKind,
    class: NetworkClass,
    planes: usize,
    seed: u64,
    job: &SortJob,
    rto_us: u64,
) -> Vec<Vec<f64>> {
    let pnet = setups::build(topology, class, planes, seed);
    let policy = setups::single_path_policy(class);
    let factory = setups::make_factory(&pnet.net, pnet.selector(policy));
    let (_, stages) = job.stages();
    let sim_stages: Vec<Stage> = stages
        .iter()
        .map(|s| Stage {
            name: s.name.to_string(),
            transfers: s
                .transfers
                .iter()
                .map(|t| Transfer {
                    src: HostId(t.src as u32),
                    dst: HostId(t.dst as u32),
                    size_bytes: t.size_bytes,
                    worker: t.worker,
                })
                .collect(),
        })
        .collect();
    let mut sim = Simulator::new(&pnet.net, setups::config_with_rto_us(rto_us));
    let mut driver = ShuffleDriver::start(
        &mut sim,
        sim_stages,
        factory,
        job.concurrency,
        job.n_workers(),
    );
    run(&mut sim, &mut driver, None);
    assert!(driver.done(), "job did not finish");
    driver.results
}

fn main() {
    let args = Args::parse();
    let tors: usize = args.get("tors", 50);
    let degree: usize = args.get("degree", 7);
    let hpt: usize = args.get("hosts-per-tor", 5);
    let planes: usize = args.get("planes", 4);
    let scale: f64 = args.get("scale", 0.02);
    let rto_us: u64 = args.get("rto-us", 1_000);
    let seed: u64 = args.get("seed", 1);
    let csv = args.has("csv");

    let topology = TopologyKind::Jellyfish {
        n_tors: tors,
        degree,
        hosts_per_tor: hpt,
    };
    let mut job = SortJob::paper_default(seed).scaled(scale);
    job.n_hosts = tors * hpt;

    banner(
        "Figure 12 — Hadoop sort per-worker stage completion times",
        &format!(
            "{} hosts, {} planes; {} total, {} blocks, {}x{} workers, concurrency {}",
            job.n_hosts,
            planes,
            pnet_bench::human_bytes(job.total_bytes),
            pnet_bench::human_bytes(job.block_bytes),
            job.n_mappers,
            job.n_reducers,
            job.concurrency
        ),
    );

    let classes = setups::classes_for(topology);
    let mut per_class: Vec<(NetworkClass, Vec<Vec<f64>>)> = Vec::new();
    for &class in &classes {
        per_class.push((class, run_job(topology, class, planes, seed, &job, rto_us)));
    }

    let stage_names = ["read input", "shuffle", "write output"];
    for (si, name) in stage_names.iter().enumerate() {
        println!();
        println!(
            "--- stage {}: {} (per-worker completion, ms) ---",
            si + 1,
            name
        );
        let mut table = Table::new(vec!["network", "min", "median", "p90", "max"], csv);
        for (class, results) in &per_class {
            let ms: Vec<f64> = results[si]
                .iter()
                .filter(|&&t| t > 0.0)
                .map(|t| t / 1e3)
                .collect();
            let s = metrics::Summary::of(&ms);
            table.row(vec![
                class.label().to_string(),
                format!("{:.2}", s.min),
                format!("{:.2}", s.median),
                format!("{:.2}", s.p90),
                format!("{:.2}", s.max),
            ]);
        }
        table.print();
    }
    println!();
    println!(
        "paper: read/write (sparse) — parallel beats serial-low, hetero lowest; \
         shuffle (dense) — parallel tracks serial high-bw, hetero adds nothing"
    );
}
