//! Figure 11: concurrent 100 kB RPC request completion times (median, p90,
//! p99) as the number of concurrent RPCs per host grows from 1 to 10.
//!
//! Paper shape: serial low-bw degrades worst (limited bandwidth + limited
//! paths -> queue buildup); serial high-bw only drains queues faster;
//! parallel networks spread requests over 4x the links and queues, giving a
//! mild increase and far fewer drops/retransmits at the 99th percentile.
//!
//! Usage: `exp_fig11 [--tors 24] [--degree 5] [--hosts-per-tor 4]
//!                   [--planes 4] [--rounds 20] [--request 100k]
//!                   [--concurrency 1,2,4,8,10] [--seed 1] [--csv]`

use pnet_bench::{banner, setups, Args, Table};
use pnet_core::TopologyKind;
use pnet_htsim::apps::{RpcDriver, RpcSlot};
use pnet_htsim::{metrics, run, SimConfig, Simulator};
use pnet_topology::{HostId, NetworkClass};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

struct Run {
    times: Vec<f64>,
    retransmits: u64,
}

fn concurrent_rpcs(
    topology: TopologyKind,
    class: NetworkClass,
    planes: usize,
    seed: u64,
    rounds: u64,
    request_bytes: u64,
    concurrency: usize,
) -> Run {
    let pnet = setups::build(topology, class, planes, seed);
    let n_hosts = pnet.net.n_hosts() as u32;
    let policy = setups::single_path_policy(class);
    let factory = setups::make_factory(&pnet.net, pnet.selector(policy));
    let mut sim = Simulator::new(&pnet.net, SimConfig::default());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0C0);
    let mut slots = Vec::new();
    for h in 0..n_hosts {
        for _ in 0..concurrency {
            let mut slot_rng = StdRng::seed_from_u64(rng.random());
            slots.push(RpcSlot {
                client: HostId(h),
                next_server: Box::new(move || loop {
                    let s = slot_rng.random_range(0..n_hosts);
                    if s != h {
                        return HostId(s);
                    }
                }),
            });
        }
    }
    // Responses are small (ack-like) as in a storage/query fan-in: the
    // request direction carries the bytes.
    let mut driver = RpcDriver::start(&mut sim, slots, factory, request_bytes, 1500, rounds);
    run(&mut sim, &mut driver, None);
    assert!(driver.done());
    Run {
        times: driver.round_times_us,
        retransmits: driver.retransmits,
    }
}

fn main() {
    let args = Args::parse();
    let tors: usize = args.get("tors", 24);
    let degree: usize = args.get("degree", 5);
    let hpt: usize = args.get("hosts-per-tor", 4);
    let planes: usize = args.get("planes", 4);
    let rounds: u64 = args.get("rounds", 20);
    let request: u64 = args.get_list("request", &[100_000])[0];
    let concurrency = args.get_list("concurrency", &[1, 2, 4, 8, 10]);
    let seed: u64 = args.get("seed", 1);
    let csv = args.has("csv");

    let topology = TopologyKind::Jellyfish {
        n_tors: tors,
        degree,
        hosts_per_tor: hpt,
    };

    banner(
        "Figure 11 — concurrent 100kB RPC completion times",
        &format!(
            "{} hosts, {} planes, {} rounds/slot, request {} bytes, single-path routing",
            tors * hpt,
            planes,
            rounds,
            request
        ),
    );

    let classes = setups::classes_for(topology);
    // Run every (concurrency, class) combination once.
    let results: Vec<(u64, Vec<Run>)> = concurrency
        .iter()
        .map(|&c| {
            let runs = classes
                .iter()
                .map(|&class| {
                    concurrent_rpcs(topology, class, planes, seed, rounds, request, c as usize)
                })
                .collect();
            (c, runs)
        })
        .collect();

    for &stat in &["median", "p90", "p99", "retransmits"] {
        println!();
        println!("--- {stat} ---");
        let mut header = vec!["concurrent".to_string()];
        header.extend(classes.iter().map(|c| c.label().to_string()));
        let mut table = Table::new(header, csv);
        for (c, runs) in &results {
            let mut row = vec![c.to_string()];
            for r in runs {
                let cell = match stat {
                    "median" => format!("{:.1}us", metrics::percentile(&r.times, 50.0)),
                    "p90" => format!("{:.1}us", metrics::percentile(&r.times, 90.0)),
                    "p99" => format!("{:.1}us", metrics::percentile(&r.times, 99.0)),
                    _ => r.retransmits.to_string(),
                };
                row.push(cell);
            }
            table.row(row);
        }
        table.print();
    }
    println!();
    println!(
        "paper: serial low-bw suffers most as concurrency grows; parallel networks \
         spread load over 4x the queues (mild increase, fewer retransmits at p99)"
    );
}
