//! Table 1: component counts for an 8,192-host network built three ways —
//! serial scale-out fat tree, serial chassis fat tree, and an 8x parallel
//! P-Net — at equal bisection bandwidth.
//!
//! Usage: `exp_table1 [--hosts 8192] [--planes 8] [--csv]`

use pnet_bench::{banner, Args, Table};
use pnet_topology::components::{parallel_pnet, serial_chassis, serial_scale_out, ChipSpec};
use pnet_topology::deployment::{deployment, DeploymentStyle, PowerModel};

fn main() {
    let args = Args::parse();
    let hosts: usize = args.get("hosts", 8192);
    let planes: usize = args.get("planes", 8);
    let csv = args.has("csv");

    banner(
        "Table 1 — component counts",
        &format!(
            "{hosts} hosts, equal bisection bandwidth; chip native radix 128, serial gearing 8:1"
        ),
    );

    let chip = ChipSpec::table1();
    let rows = vec![
        serial_scale_out(hosts, chip),
        serial_chassis(hosts, chip),
        parallel_pnet(hosts, planes, chip),
    ];

    let mut table = Table::new(
        vec!["Architecture", "Tiers", "Hops", "Chips", "Boxes", "Links"],
        csv,
    );
    for r in &rows {
        table.row(vec![
            r.architecture.clone(),
            r.tiers.to_string(),
            r.hops.to_string(),
            r.chips.to_string(),
            r.boxes.to_string(),
            r.links.to_string(),
        ]);
    }
    table.print();

    println!();
    println!("paper row 1: Serial (scale-out)  4  7  3584  3584  24.6k");
    println!("paper row 2: Serial chassis      2  7  3584   192   8.2k");
    println!("paper row 3: Parallel 8x         2  3  1536   192   8.2k");

    // Sweep: chips and hops versus the number of planes at fixed bisection.
    println!();
    banner(
        "Extension — parallel design versus plane count",
        "chips scale linearly with N; boxes and (bundled) cables stay fixed",
    );
    let mut sweep = Table::new(vec!["Planes", "Chips", "Boxes", "Links", "Hops"], csv);
    for n in [1usize, 2, 4, 8] {
        let row = parallel_pnet(hosts, n, chip);
        sweep.row(vec![
            n.to_string(),
            row.chips.to_string(),
            row.boxes.to_string(),
            row.links.to_string(),
            row.hops.to_string(),
        ]);
    }
    sweep.print();

    // Deployment extension (section 6.1): transceivers, cable runs and power
    // under the three wiring styles.
    println!();
    banner(
        "Extension — deployment styles (section 6.1)",
        "first-order model: 350W/chip, 4.5W/transceiver, 150W/box, 0.25W/OCS port",
    );
    let model = PowerModel::default();
    let mut dep = Table::new(
        vec![
            "Architecture",
            "Wiring",
            "Chips",
            "Transceivers",
            "CableRuns",
            "PanelPorts",
            "Power(kW)",
        ],
        csv,
    );
    let scale_out = serial_scale_out(hosts, chip);
    let chassis = serial_chassis(hosts, chip);
    let pnet = parallel_pnet(hosts, planes, chip);
    for (row, style, frac) in [
        (&scale_out, DeploymentStyle::DiscreteFibers, 0.0),
        (&chassis, DeploymentStyle::DiscreteFibers, 0.0),
        (&pnet, DeploymentStyle::DiscreteFibers, 1.0 / 3.0),
        (&pnet, DeploymentStyle::PatchPanel, 1.0 / 3.0),
        (&pnet, DeploymentStyle::OpticalCircuitSwitch, 1.0 / 3.0),
    ] {
        let d = deployment(row, style, frac, &model);
        dep.row(vec![
            row.architecture.clone(),
            format!("{style:?}"),
            d.chips.to_string(),
            d.transceivers.to_string(),
            d.cable_runs.to_string(),
            d.panel_ports.to_string(),
            format!("{:.1}", d.power_kw),
        ]);
    }
    dep.print();
    println!();
    println!(
        "paper section 6.1: patch panels cut wiring complexity; an OCS core removes\n\
         the spine chips and their transceivers — the parallel design's power win"
    );
}
