//! Figure 8: Jellyfish throughput under routing constraints — (a)
//! all-to-all and (b) permutation with the default 8-way KSP, and (c) the
//! multipath-level sweep.
//!
//! Paper shape: all-to-all saturates parallel planes even at K = 8;
//! permutation with the serial-default K = 8 reaches only ~60% of the
//! parallel capacity; sweeping K recovers it, with N-plane P-Nets needing
//! ~N x 8 subflows (circled points in the paper).
//!
//! Scale note: defaults use 32 ToRs x 4 hosts (128 hosts) instead of the
//! paper's 1024-host equivalent; pass `--tors 128 --hosts-per-tor 8
//! --degree 8` for paper scale.
//!
//! Usage: `exp_fig8 [--tors 32] [--degree 6] [--hosts-per-tor 4] [--seed 1]
//!                  [--eps 0.1] [--ksweep 1,2,4,8,16,32] [--csv]`

use pnet_bench::{banner, f3, Args, Table};
use pnet_flowsim::{commodity, throughput, Commodity};
use pnet_topology::{parallel, Jellyfish, LinkProfile, Network, NetworkClass};
use pnet_workloads::tm;

fn main() {
    let args = Args::parse();
    let tors: usize = args.get("tors", 32);
    let degree: usize = args.get("degree", 6);
    let hpt: usize = args.get("hosts-per-tor", 4);
    let seed: u64 = args.get("seed", 1);
    let eps: f64 = args.get("eps", 0.1);
    let ksweep: Vec<u64> = args.get_list("ksweep", &[1, 2, 4, 8, 16, 32]);
    let csv = args.has("csv");

    let hosts = tors * hpt;
    let base = LinkProfile::paper_default();
    let proto = Jellyfish::new(tors, degree, hpt, 0);

    let build = |class: NetworkClass, n: usize| -> Network {
        parallel::jellyfish_network(class, proto, n, seed, &base)
    };

    banner(
        "Figure 8a/8b — Jellyfish throughput with default 8-way KSP",
        &format!(
            "{tors} ToRs x {hpt} hosts (= {hosts}), degree {degree}; normalized to serial low-bw"
        ),
    );

    let a2a: Vec<Commodity> = commodity::all_to_all(hosts);
    let perm: Vec<Commodity> = commodity::permutation(&tm::random_permutation(hosts, seed));

    let mut nets: Vec<(String, Network)> =
        vec![("serial low-bw".into(), build(NetworkClass::SerialLow, 1))];
    for n in [2usize, 4, 8] {
        nets.push((
            format!("par-hetero {n}x"),
            build(NetworkClass::ParallelHeterogeneous, n),
        ));
    }

    let mut table = Table::new(vec!["network", "all-to-all", "permutation"], csv);
    let mut base_a2a = 0.0;
    let mut base_perm = 0.0;
    for (i, (name, net)) in nets.iter().enumerate() {
        let (t_a2a, _) = throughput::ksp_multipath_throughput(net, &a2a, 8, eps);
        let (t_perm, _) = throughput::ksp_multipath_throughput(net, &perm, 8, eps);
        if i == 0 {
            base_a2a = t_a2a;
            base_perm = t_perm;
        }
        table.row(vec![
            name.clone(),
            f3(t_a2a / base_a2a),
            f3(t_perm / base_perm),
        ]);
    }
    table.print();
    println!();
    println!("paper: all-to-all scales ~Nx even at K=8; permutation reaches only ~60% of capacity");
    println!();

    banner(
        "Figure 8c — permutation throughput vs multipath level K",
        "normalized to serial low-bw saturated value; * marks K that saturates (>=95% of Nx)",
    );

    let serial = build(NetworkClass::SerialLow, 1);
    let (serial_sat, _) =
        throughput::ksp_multipath_throughput(&serial, &perm, *ksweep.last().unwrap() as usize, eps);

    let sweep: Vec<(String, NetworkClass, usize)> = vec![
        ("serial low-bw".into(), NetworkClass::SerialLow, 1),
        (
            "par-hetero 2x".into(),
            NetworkClass::ParallelHeterogeneous,
            2,
        ),
        (
            "par-hetero 4x".into(),
            NetworkClass::ParallelHeterogeneous,
            4,
        ),
    ];
    let mut header = vec!["K".to_string()];
    header.extend(sweep.iter().map(|(n, _, _)| n.clone()));
    let mut table = Table::new(header, csv);
    let mut saturated: Vec<Option<u64>> = vec![None; sweep.len()];
    for &kk in &ksweep {
        let mut row = vec![kk.to_string()];
        for (col, (_, class, n)) in sweep.iter().enumerate() {
            let net = build(*class, *n);
            let (t, _) = throughput::ksp_multipath_throughput(&net, &perm, kk as usize, eps);
            let norm = t / serial_sat;
            let mark = if norm >= 0.95 * *n as f64 && saturated[col].is_none() {
                saturated[col] = Some(kk);
                "*"
            } else {
                ""
            };
            row.push(format!("{}{}", f3(norm), mark));
        }
        table.row(row);
    }
    table.print();
    println!();
    for ((name, _, n), sat) in sweep.iter().zip(&saturated) {
        match sat {
            Some(kk) => println!("{name}: saturates ({n}x) at K = {kk}"),
            None => println!("{name}: did not reach {n}x within the sweep"),
        }
    }
    println!("paper: N-plane Jellyfish needs ~N x 8 subflows to saturate");
}
