//! Extension experiment — performance isolation via plane pinning (paper
//! section 7).
//!
//! "Because P-Net has multiple isolated dataplanes, operators can assign
//! different traffic classes to different dataplanes to achieve performance
//! isolation. For example, user-facing frontend traffic can be assigned to
//! one dataplane, and background data analysis traffic can be assigned to
//! another."
//!
//! Setup: latency-sensitive 1500 B RPCs (frontend) run alongside heavy
//! background bulk transfers on a 4-plane P-Net, under two configurations:
//!
//! * **shared** — both classes use all planes (RPCs shortest-plane, bulk
//!   multipath over everything);
//! * **pinned** — RPCs own plane 0, bulk is confined to planes 1–3.
//!
//! Expected: pinning restores near-idle RPC tail latency at a modest cost in
//! bulk throughput (it loses one plane).
//!
//! Usage: `exp_isolation [--tors 16] [--degree 5] [--hosts-per-tor 4]
//!                       [--planes 4] [--rounds 50] [--bulk-size 5m]
//!                       [--bulk-flows 16] [--seed 1] [--csv]`

use pnet_bench::{banner, setups, Args, Table};
use pnet_core::{PathPolicy, TopologyKind};
use pnet_htsim::apps::{RpcDriver, RpcSlot};
use pnet_htsim::{metrics, run, FlowSpec, SimConfig, SimTime, Simulator};
use pnet_topology::{HostId, NetworkClass};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Forwards RPC completions to the inner driver and swallows background
/// bulk completions (tagged `u64::MAX`).
struct IgnoreBulk<'a>(RpcDriver<'a>);

impl pnet_htsim::Driver for IgnoreBulk<'_> {
    fn on_flow_complete(&mut self, sim: &mut Simulator, rec: &pnet_htsim::FlowRecord) {
        if rec.owner_tag != u64::MAX {
            pnet_htsim::Driver::on_flow_complete(&mut self.0, sim, rec);
        }
    }
}

struct Outcome {
    rpc_median_us: f64,
    rpc_p99_us: f64,
    bulk_goodput_gbps: f64,
}

#[allow(clippy::too_many_arguments)]
fn run_mix(
    topology: TopologyKind,
    planes: usize,
    seed: u64,
    rounds: u64,
    bulk_size: u64,
    bulk_flows: usize,
    rpc_policy: PathPolicy,
    bulk_policy: PathPolicy,
) -> Outcome {
    let pnet = setups::build(topology, NetworkClass::ParallelHeterogeneous, planes, seed);
    let n_hosts = pnet.net.n_hosts() as u32;
    let mut sim = Simulator::new(&pnet.net, SimConfig::default());

    // Background bulk: continuous large transfers between scattered pairs,
    // restarted for the whole run via a generous size (they outlive the
    // RPC measurement window).
    let mut bulk_factory = setups::make_factory(&pnet.net, pnet.selector(bulk_policy));
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB0B0);
    let mut bulk_conns = Vec::new();
    for _ in 0..bulk_flows {
        let a = rng.random_range(0..n_hosts);
        let mut b = rng.random_range(0..n_hosts - 1);
        if b >= a {
            b += 1;
        }
        let (routes, cc) = bulk_factory(HostId(a), HostId(b), bulk_size);
        bulk_conns.push(sim.start_flow(FlowSpec {
            src: HostId(a),
            dst: HostId(b),
            size_bytes: bulk_size,
            routes,
            cc,
            owner_tag: u64::MAX,
        }));
    }

    // Frontend RPCs on every host.
    let rpc_factory = setups::make_factory(&pnet.net, pnet.selector(rpc_policy));
    let slots: Vec<RpcSlot> = (0..n_hosts)
        .map(|h| {
            let mut r = StdRng::seed_from_u64(rng.random());
            RpcSlot {
                client: HostId(h),
                next_server: Box::new(move || loop {
                    let s = r.random_range(0..n_hosts);
                    if s != h {
                        return HostId(s);
                    }
                }),
            }
        })
        .collect();
    let mut driver = IgnoreBulk(RpcDriver::start(
        &mut sim,
        slots,
        rpc_factory,
        1500,
        1500,
        rounds,
    ));
    run(&mut sim, &mut driver, Some(SimTime::from_ms(200)));
    let driver = driver.0;
    assert!(driver.done(), "RPCs did not finish within the window");

    // Bulk goodput: bytes acked per elapsed time across background flows.
    let elapsed = sim.now.as_secs_f64();
    let bulk_bytes: u64 = bulk_conns
        .iter()
        .map(|&c| sim.conn(c).acked * pnet_htsim::MTU_BYTES as u64)
        .sum();
    Outcome {
        rpc_median_us: metrics::percentile(&driver.round_times_us, 50.0),
        rpc_p99_us: metrics::percentile(&driver.round_times_us, 99.0),
        bulk_goodput_gbps: bulk_bytes as f64 * 8.0 / elapsed / 1e9,
    }
}

fn main() {
    let args = Args::parse();
    let tors: usize = args.get("tors", 16);
    let degree: usize = args.get("degree", 5);
    let hpt: usize = args.get("hosts-per-tor", 4);
    let planes: usize = args.get("planes", 4);
    let rounds: u64 = args.get("rounds", 50);
    let bulk_size: u64 = args.get_list("bulk-size", &[5_000_000])[0];
    let bulk_flows: usize = args.get("bulk-flows", 16);
    let seed: u64 = args.get("seed", 1);
    let csv = args.has("csv");

    let topology = TopologyKind::Jellyfish {
        n_tors: tors,
        degree,
        hosts_per_tor: hpt,
    };

    banner(
        "Extension — performance isolation by plane pinning (paper section 7)",
        &format!(
            "{} hosts, {} planes; {} bulk flows of {} vs 1500B RPCs x{} rounds",
            tors * hpt,
            planes,
            bulk_flows,
            pnet_bench::human_bytes(bulk_size),
            rounds
        ),
    );

    // Baseline: RPCs alone (no background traffic).
    let idle = run_mix(
        topology,
        planes,
        seed,
        rounds,
        1, // negligible background
        1,
        PathPolicy::ShortestPlane,
        PathPolicy::ShortestPlane,
    );

    let shared = run_mix(
        topology,
        planes,
        seed,
        rounds,
        bulk_size,
        bulk_flows,
        PathPolicy::ShortestPlane,
        PathPolicy::MultipathKsp { k: 4 * planes },
    );

    let background_planes: Vec<u16> = (1..planes as u16).collect();
    let pinned = run_mix(
        topology,
        planes,
        seed,
        rounds,
        bulk_size,
        bulk_flows,
        PathPolicy::Pinned {
            planes: vec![0],
            inner: Box::new(PathPolicy::ShortestPlane),
        },
        PathPolicy::Pinned {
            planes: background_planes,
            inner: Box::new(PathPolicy::MultipathKsp {
                k: 4 * (planes - 1),
            }),
        },
    );

    let mut table = Table::new(vec!["config", "RPC median", "RPC p99", "bulk goodput"], csv);
    for (name, o) in [
        ("RPCs alone (idle)", &idle),
        ("shared planes", &shared),
        ("pinned (frontend=p0)", &pinned),
    ] {
        table.row(vec![
            name.to_string(),
            format!("{:.1}us", o.rpc_median_us),
            format!("{:.1}us", o.rpc_p99_us),
            format!("{:.1}Gb/s", o.bulk_goodput_gbps),
        ]);
    }
    table.print();
    println!();
    println!(
        "expected: shared planes inflate RPC tail latency (queueing behind bulk);\n\
         pinning restores near-idle RPC tails at the cost of one plane of bulk capacity"
    );
}
