//! Figure 14: average hop count across all src/dst pairs versus random
//! link-failure rate, for serial, parallel homogeneous, and parallel
//! heterogeneous Jellyfish networks.
//!
//! Paper shape: at 40% failures serial loses ~22% (hops up), homogeneous
//! only ~3% (independent failures per plane), heterogeneous stays lowest in
//! absolute hops but its advantage shrinks.
//!
//! Usage: `exp_fig14 [--tors 98] [--degree 7] [--planes 4] [--trials 5]
//!                   [--seed 1] [--csv]`

use pnet_bench::{banner, f3, Args, Table};
use pnet_core::analysis;
use pnet_topology::{failures, parallel, Jellyfish, LinkProfile, NetworkClass};

fn main() {
    let args = Args::parse();
    let tors: usize = args.get("tors", 98);
    let degree: usize = args.get("degree", 7);
    let planes: usize = args.get("planes", 4);
    let trials: u64 = args.get("trials", 5);
    let seed: u64 = args.get("seed", 1);
    let csv = args.has("csv");

    banner(
        "Figure 14 — mean switch hops vs link failure rate",
        &format!(
            "Jellyfish {tors} ToRs, degree {degree}, {planes} planes, {trials} trials; \
             failures are random fabric cables across the whole network"
        ),
    );

    let base = LinkProfile::paper_default();
    let proto = Jellyfish::new(tors, degree, 1, 0);

    let mut table = Table::new(
        vec![
            "fail%",
            "serial",
            "par-homogeneous",
            "par-heterogeneous",
            "serial+%",
            "homo+%",
            "hetero+%",
        ],
        csv,
    );

    let fractions = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40];
    let mut baselines: Option<(f64, f64, f64)> = None;
    for &frac in &fractions {
        let mut serial_sum = 0.0;
        let mut homo_sum = 0.0;
        let mut hetero_sum = 0.0;
        for t in 0..trials {
            let topo_seed = seed + t;
            let mut serial = parallel::jellyfish_network(
                NetworkClass::SerialLow,
                proto,
                planes,
                topo_seed,
                &base,
            );
            let mut homo = parallel::jellyfish_network(
                NetworkClass::ParallelHomogeneous,
                proto,
                planes,
                topo_seed,
                &base,
            );
            let mut hetero = parallel::jellyfish_network(
                NetworkClass::ParallelHeterogeneous,
                proto,
                planes,
                topo_seed,
                &base,
            );
            let fail_seed = 1000 + seed * 17 + t;
            failures::fail_random_fraction(&mut serial, frac, fail_seed);
            failures::fail_random_fraction(&mut homo, frac, fail_seed);
            failures::fail_random_fraction(&mut hetero, frac, fail_seed);
            serial_sum += analysis::mean_hops_single_plane(&serial);
            homo_sum += analysis::mean_hops_best_plane(&homo);
            hetero_sum += analysis::mean_hops_best_plane(&hetero);
        }
        let (s, h, x) = (
            serial_sum / trials as f64,
            homo_sum / trials as f64,
            hetero_sum / trials as f64,
        );
        let (s0, h0, x0) = *baselines.get_or_insert((s, h, x));
        table.row(vec![
            format!("{:.0}", frac * 100.0),
            f3(s),
            f3(h),
            f3(x),
            format!("{:+.1}%", 100.0 * (s - s0) / s0),
            format!("{:+.1}%", 100.0 * (h - h0) / h0),
            format!("{:+.1}%", 100.0 * (x - x0) / x0),
        ]);
    }
    table.print();
    println!();
    println!(
        "paper: serial +22% at 40% failures; parallel homogeneous +3%; \
         heterogeneous lowest absolute hops, advantage shrinking with failures"
    );
}
