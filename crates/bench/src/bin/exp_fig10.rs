//! Figure 10 + Table 2: MTU-sized (1500 B) RPC request completion times on
//! a 4-plane Jellyfish P-Net with single-path routing.
//!
//! Paper setup: 686-host Jellyfish, each host ping-pongs a 1500 B request/
//! response with random servers over 1000 rounds. Paper results (Table 2,
//! normalized to serial low-bw): parallel heterogeneous median 80.1%,
//! average 86.6%, p99 90.4%; parallel homogeneous ~= serial low-bw; serial
//! high-bw ~98% (only serialization delay shrinks — propagation dominates).
//!
//! Usage: `exp_fig10 [--tors 98] [--degree 7] [--hosts-per-tor 7]
//!                   [--planes 4] [--rounds 100] [--seed 1] [--queue 100]
//!                   [--cdf] [--csv]`

use pnet_bench::{banner, setups, Args, Table};
use pnet_core::TopologyKind;
use pnet_htsim::apps::{RpcDriver, RpcSlot};
use pnet_htsim::{metrics, run, SimConfig, Simulator, MTU_BYTES};
use pnet_topology::{HostId, NetworkClass};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn rpc_times(
    topology: TopologyKind,
    class: NetworkClass,
    planes: usize,
    seed: u64,
    rounds: u64,
    queue_packets: u64,
) -> Vec<f64> {
    let pnet = setups::build(topology, class, planes, seed);
    let n_hosts = pnet.net.n_hosts() as u32;
    let policy = setups::single_path_policy(class);
    let factory = setups::make_factory(&pnet.net, pnet.selector(policy));
    let cfg = SimConfig {
        queue_bytes: queue_packets * MTU_BYTES as u64,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&pnet.net, cfg);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0001);
    let slots: Vec<RpcSlot> = (0..n_hosts)
        .map(|h| {
            let mut slot_rng = StdRng::seed_from_u64(rng.random());
            RpcSlot {
                client: HostId(h),
                next_server: Box::new(move || loop {
                    let s = slot_rng.random_range(0..n_hosts);
                    if s != h {
                        return HostId(s);
                    }
                }),
            }
        })
        .collect();
    let mut driver = RpcDriver::start(&mut sim, slots, factory, 1500, 1500, rounds);
    run(&mut sim, &mut driver, None);
    assert!(driver.done(), "RPC rounds did not complete");
    driver.round_times_us
}

fn main() {
    let args = Args::parse();
    let tors: usize = args.get("tors", 98);
    let degree: usize = args.get("degree", 7);
    let hpt: usize = args.get("hosts-per-tor", 7);
    let planes: usize = args.get("planes", 4);
    let rounds: u64 = args.get("rounds", 100);
    let seed: u64 = args.get("seed", 1);
    let queue: u64 = args.get("queue", 100);
    let csv = args.has("csv");

    let topology = TopologyKind::Jellyfish {
        n_tors: tors,
        degree,
        hosts_per_tor: hpt,
    };

    banner(
        "Figure 10 / Table 2 — 1500B RPC request completion time, single-path",
        &format!(
            "{} hosts, {} planes, {} rounds/host, queue {} pkts; \
             hetero uses the shortest plane, homo hashes planes",
            tors * hpt,
            planes,
            rounds,
            queue
        ),
    );

    let classes = setups::classes_for(topology);
    let mut all: Vec<(NetworkClass, Vec<f64>)> = Vec::new();
    for &class in &classes {
        let times = rpc_times(topology, class, planes, seed, rounds, queue);
        all.push((class, times));
    }

    let base = metrics::Summary::of(&all[0].1);
    let mut table = Table::new(
        vec![
            "network", "median", "average", "99%-tile", "med/base", "avg/base", "p99/base",
        ],
        csv,
    );
    for (class, times) in &all {
        let s = metrics::Summary::of(times);
        table.row(vec![
            class.label().to_string(),
            format!("{:.2}us", s.median),
            format!("{:.2}us", s.mean),
            format!("{:.2}us", s.p99),
            format!("{:.1}%", 100.0 * s.median / base.median),
            format!("{:.1}%", 100.0 * s.mean / base.mean),
            format!("{:.1}%", 100.0 * s.p99 / base.p99),
        ]);
    }
    table.print();
    println!();
    println!("paper Table 2: serial-low 100/100/100; par-homo 100/99.2/100;");
    println!("               par-hetero 80.1/86.6/90.4; serial-high 98.1/97.9/97.4");

    if args.has("cdf") {
        println!();
        banner("Figure 10 — completion-time CDF points", "");
        let mut t = Table::new(
            {
                let mut h = vec!["percentile".to_string()];
                h.extend(all.iter().map(|(c, _)| c.label().to_string()));
                h
            },
            csv,
        );
        for p in [5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0] {
            let mut row = vec![format!("{p}%")];
            for (_, times) in &all {
                row.push(format!("{:.2}us", metrics::percentile(times, p)));
            }
            t.row(row);
        }
        t.print();
    }
}
