//! Figure 7: ideal (no-path-constraint) throughput of rack-level all-to-all
//! traffic on Jellyfish networks.
//!
//! Paper shape: parallel *heterogeneous* Jellyfish delivers up to ~60%
//! higher total throughput than even the serial high-bandwidth equivalent,
//! because the min-over-planes path length is shorter, so each flow consumes
//! less core capacity. Parallel homogeneous equals serial high-bandwidth
//! (identical topology, same total capacity) and is omitted in the paper.
//!
//! Scale note: the paper uses 128 racks; the default here is 64 for a
//! seconds-scale run (`--racks 128` for paper scale).
//!
//! Usage: `exp_fig7 [--racks 64] [--degree 8] [--planes 2,4,8] [--seed 1]
//!                  [--eps 0.1] [--trials 3] [--csv]`

use pnet_bench::{banner, f3, Args, Table};
use pnet_flowsim::{commodity, throughput};
use pnet_topology::{parallel, Jellyfish, LinkProfile, NetworkClass};

fn main() {
    let args = Args::parse();
    let racks: usize = args.get("racks", 64);
    let degree: usize = args.get("degree", 8);
    let seed: u64 = args.get("seed", 1);
    let eps: f64 = args.get("eps", 0.1);
    let trials: u64 = args.get("trials", 3);
    let planes: Vec<u64> = args.get_list("planes", &[2, 4, 8]);
    let csv = args.has("csv");

    banner(
        "Figure 7 — ideal throughput, rack-level all-to-all on Jellyfish",
        &format!(
            "{racks} racks, ToR degree {degree}, {trials} trials; \
             normalized to serial low-bw; no path constraints (free routing per plane)"
        ),
    );

    let base = LinkProfile::paper_default();
    let proto = Jellyfish::new(racks, degree, 1, 0);
    let commodities = commodity::all_to_all(racks);

    let mut table = Table::new(
        vec![
            "planes N",
            "serial high-bw (Nx)",
            "par-heterogeneous",
            "hetero / serial-high",
        ],
        csv,
    );

    // Baseline: serial low-bandwidth.
    let mut serial_low = 0.0;
    for t in 0..trials {
        let net = parallel::jellyfish_network(NetworkClass::SerialLow, proto, 1, seed + t, &base);
        let (total, _) = throughput::ideal_core_throughput(&net, &commodities, eps);
        serial_low += total;
    }
    serial_low /= trials as f64;

    for &n in &planes {
        let n = n as usize;
        let mut high_sum = 0.0;
        let mut het_sum = 0.0;
        for t in 0..trials {
            let high =
                parallel::jellyfish_network(NetworkClass::SerialHigh, proto, n, seed + t, &base);
            let het = parallel::jellyfish_network(
                NetworkClass::ParallelHeterogeneous,
                proto,
                n,
                seed + t,
                &base,
            );
            high_sum += throughput::ideal_core_throughput(&high, &commodities, eps).0;
            het_sum += throughput::ideal_core_throughput(&het, &commodities, eps).0;
        }
        let high = high_sum / trials as f64 / serial_low;
        let het = het_sum / trials as f64 / serial_low;
        table.row(vec![
            n.to_string(),
            f3(high),
            f3(het),
            format!("{:+.1}%", 100.0 * (het - high) / high),
        ]);
    }
    table.print();
    println!();
    println!(
        "paper: parallel heterogeneous up to +60% over serial high-bw at 8 planes; \
         homogeneous == serial high-bw (omitted)"
    );
}
