//! Extension experiment — incast (section 6.5 of the paper).
//!
//! "For incast scenarios, P-Net can spread the traffic across separate
//! dataplanes to alleviate congestion in the network, but careful
//! coordination is still needed to avoid overrunning end host NIC buffers.
//! We defer this to future studies that might involve incast-aware
//! transports like DCTCP."
//!
//! This binary runs that future study: an N-to-1 fan-in on the four network
//! classes, with Reno versus DCTCP (ECN threshold K = 20 packets). Expected
//! shape: P-Net spreads the fan-in over N planes and removes *in-network*
//! contention, but the receiver's per-plane downlinks still overflow under
//! Reno; DCTCP keeps queues at ~K and eliminates the drops on both.
//!
//! Usage: `exp_incast [--tors 16] [--degree 5] [--hosts-per-tor 4]
//!                    [--planes 4] [--senders 4,8,16,32] [--size 1m]
//!                    [--ecn-k 20] [--seed 1] [--csv]`

use pnet_bench::{banner, setups, Args, Table};
use pnet_core::{PathPolicy, TopologyKind};
use pnet_htsim::{metrics, run_to_completion, CcAlgo, FlowSpec, SimConfig, Simulator};
use pnet_topology::{HostId, NetworkClass};

struct Outcome {
    /// Time until the last sender finishes (the incast completion time), us.
    last_fct_us: f64,
    drops: u64,
    retransmits: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_incast(
    topology: TopologyKind,
    class: NetworkClass,
    planes: usize,
    seed: u64,
    n_senders: usize,
    size: u64,
    cc: CcAlgo,
    ecn_k: Option<u32>,
) -> Outcome {
    let pnet = setups::build(topology, class, planes, seed);
    let n_hosts = pnet.net.n_hosts();
    assert!(n_senders < n_hosts, "too many senders for the cluster");
    // Spread senders over planes round-robin (the P-Net mitigation); serial
    // networks have one plane so this is a no-op there.
    let policy = PathPolicy::RoundRobin;
    let mut factory = setups::make_factory(&pnet.net, pnet.selector(policy));
    let cfg = SimConfig {
        ecn_threshold_packets: ecn_k,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&pnet.net, cfg);
    let dst = HostId(0);
    for s in 0..n_senders {
        // Senders scattered across racks, skipping the destination's rack.
        let src = HostId((s * (n_hosts - 1) / n_senders + 4) as u32 % n_hosts as u32);
        let src = if src == dst { HostId(1) } else { src };
        let (routes, _) = factory(src, dst, size);
        sim.start_flow(FlowSpec {
            src,
            dst,
            size_bytes: size,
            routes,
            cc,
            owner_tag: s as u64,
        });
    }
    run_to_completion(&mut sim);
    let fcts = metrics::fcts_us(&sim.records);
    Outcome {
        last_fct_us: fcts.iter().copied().fold(0.0, f64::max),
        drops: sim.dropped_packets,
        retransmits: sim.records.iter().map(|r| r.retransmits).sum(),
    }
}

fn main() {
    let args = Args::parse();
    let tors: usize = args.get("tors", 16);
    let degree: usize = args.get("degree", 5);
    let hpt: usize = args.get("hosts-per-tor", 4);
    let planes: usize = args.get("planes", 4);
    let seed: u64 = args.get("seed", 1);
    let size: u64 = args.get_list("size", &[1_000_000])[0];
    let senders = args.get_list("senders", &[4, 8, 16, 32]);
    let ecn_k: u32 = args.get("ecn-k", 20);
    let csv = args.has("csv");

    let topology = TopologyKind::Jellyfish {
        n_tors: tors,
        degree,
        hosts_per_tor: hpt,
    };

    banner(
        "Extension — incast with and without DCTCP (paper section 6.5)",
        &format!(
            "{} hosts, {} planes; N senders -> 1 receiver, {} per sender; \
             P-Net spreads senders round-robin over planes; DCTCP K = {} pkts",
            tors * hpt,
            planes,
            pnet_bench::human_bytes(size),
            ecn_k
        ),
    );

    let classes = [
        NetworkClass::SerialLow,
        NetworkClass::ParallelHeterogeneous,
        NetworkClass::SerialHigh,
    ];
    for (cc, ecn, label) in [
        (CcAlgo::Reno, None, "TCP (Reno)"),
        (CcAlgo::Dctcp, Some(ecn_k), "DCTCP"),
    ] {
        println!();
        println!("--- {label} ---");
        let mut header = vec!["senders".to_string()];
        for c in &classes {
            header.push(format!("{} fct", c.label()));
            header.push("drops/rtx".into());
        }
        let mut table = Table::new(header, csv);
        for &n in &senders {
            let mut row = vec![n.to_string()];
            for &class in &classes {
                let o = run_incast(topology, class, planes, seed, n as usize, size, cc, ecn);
                row.push(format!("{:.0}us", o.last_fct_us));
                row.push(format!("{}/{}", o.drops, o.retransmits));
            }
            table.row(row);
        }
        table.print();
    }
    println!();
    println!(
        "expected: P-Net spreads fan-in over planes (lower completion times, fewer\n\
         in-network drops than serial low-bw); DCTCP removes the remaining drops\n\
         on every network by keeping queues at ~K"
    );
}
