//! Serial-vs-parallel wall-clock report for the two bulk hot paths:
//! all-pairs KSP route precomputation and one Garg–Könemann MCF solve.
//!
//! Emits `BENCH_routing.json` and `BENCH_mcf.json` (in the working
//! directory) recording both timings, the thread count used, and whether the
//! serial and parallel outputs were identical — so the speedup criterion can
//! be checked on any machine (the parallel path degenerates to the serial
//! loop when only one core is available; set `RAYON_NUM_THREADS` to pin the
//! worker count).
//!
//! Usage: `bench_report [--tors 64] [--degree 8] [--planes 4] [--k 32]
//!                      [--seed 1] [--eps 0.1]`

use pnet_bench::{banner, f3, Args};
use pnet_flowsim::{commodity, mcf, Commodity};
use pnet_routing::{Parallelism, RouteAlgo, Router};
use pnet_topology::{assemble_homogeneous, Jellyfish, LinkProfile, Network, PlaneId, RackId};
use pnet_workloads::tm;
use std::time::Instant;

fn write_json(path: &str, body: &str) {
    std::fs::write(path, body).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

/// Precompute the all-pairs route table and return (wall ms, full table dump
/// for the identity check).
fn timed_precompute(
    net: &Network,
    k: usize,
    par: Parallelism,
) -> (f64, Vec<Vec<pnet_routing::Path>>) {
    let router = Router::with_parallelism(net, RouteAlgo::Ksp { k }, par);
    let t0 = Instant::now();
    router.precompute_all_pairs_with(par);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let n = router.n_racks();
    let mut dump = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            for p in 0..router.n_planes() {
                dump.push(
                    router
                        .paths_in_plane(PlaneId(p as u16), RackId(a as u32), RackId(b as u32))
                        .to_vec(),
                );
            }
        }
    }
    (ms, dump)
}

fn timed_mcf(
    net: &Network,
    commodities: &[Commodity],
    eps: f64,
    par: Parallelism,
) -> (f64, mcf::McfSolution) {
    let t0 = Instant::now();
    let sol = mcf::solve_with_options(
        net,
        commodities,
        &mcf::PathMode::AnyPath,
        eps,
        mcf::McfOptions {
            parallelism: par,
            ..Default::default()
        },
    );
    (t0.elapsed().as_secs_f64() * 1e3, sol)
}

fn main() {
    let args = Args::parse();
    let tors: usize = args.get("tors", 64);
    let degree: usize = args.get("degree", 8);
    let planes: usize = args.get("planes", 4);
    let k: usize = args.get("k", 32);
    let seed: u64 = args.get("seed", 1);
    let eps: f64 = args.get("eps", 0.1);

    let threads = Parallelism::Rayon.threads();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    banner(
        "Serial vs parallel wall-clock: KSP precompute and GK MCF solve",
        &format!(
            "{planes}-plane jellyfish, {tors} racks, degree {degree}; \
             {threads} worker thread(s) on {cores} core(s)"
        ),
    );

    let net = assemble_homogeneous(
        &Jellyfish::new(tors, degree, 1, seed),
        planes,
        &LinkProfile::paper_default(),
    );

    // --- Routing: all-pairs KSP precompute. -------------------------------
    let (serial_ms, serial_dump) = timed_precompute(&net, k, Parallelism::Serial);
    let (parallel_ms, parallel_dump) = timed_precompute(&net, k, Parallelism::Rayon);
    let identical = serial_dump == parallel_dump;
    let entries = serial_dump.len();
    let speedup = serial_ms / parallel_ms;
    println!(
        "routing: all-pairs KSP k={k}: serial {} ms, parallel {} ms, \
         speedup {}x, identical tables: {identical}",
        f3(serial_ms),
        f3(parallel_ms),
        f3(speedup)
    );
    assert!(identical, "serial and parallel route tables diverged");
    write_json(
        "BENCH_routing.json",
        &format!(
            "{{\n  \"benchmark\": \"all_pairs_ksp_precompute\",\n  \
             \"topology\": {{\"kind\": \"jellyfish\", \"n_tors\": {tors}, \"degree\": {degree}, \"planes\": {planes}}},\n  \
             \"k\": {k},\n  \"route_table_entries\": {entries},\n  \
             \"threads\": {threads},\n  \"available_cores\": {cores},\n  \
             \"serial_ms\": {serial_ms:.3},\n  \"parallel_ms\": {parallel_ms:.3},\n  \
             \"speedup\": {speedup:.3},\n  \"identical_tables\": {identical}\n}}\n"
        ),
    );

    // --- MCF: one GK solve on a permutation, AnyPath oracle. --------------
    let c: Vec<Commodity> = commodity::permutation(&tm::random_permutation(tors, seed));
    let (mcf_serial_ms, sol_s) = timed_mcf(&net, &c, eps, Parallelism::Serial);
    let (mcf_parallel_ms, sol_p) = timed_mcf(&net, &c, eps, Parallelism::Rayon);
    let bit_identical = sol_s.lambda.to_bits() == sol_p.lambda.to_bits()
        && sol_s.phases == sol_p.phases
        && sol_s
            .rates
            .iter()
            .zip(&sol_p.rates)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    let mcf_speedup = mcf_serial_ms / mcf_parallel_ms;
    println!(
        "mcf: GK solve ({} commodities, eps {eps}): serial {} ms, parallel {} ms, \
         speedup {}x, lambda {}, bit-identical: {bit_identical}",
        c.len(),
        f3(mcf_serial_ms),
        f3(mcf_parallel_ms),
        f3(mcf_speedup),
        f3(sol_s.lambda)
    );
    assert!(bit_identical, "serial and parallel MCF solutions diverged");
    write_json(
        "BENCH_mcf.json",
        &format!(
            "{{\n  \"benchmark\": \"gk_mcf_solve\",\n  \
             \"topology\": {{\"kind\": \"jellyfish\", \"n_tors\": {tors}, \"degree\": {degree}, \"planes\": {planes}}},\n  \
             \"commodities\": {},\n  \"eps\": {eps},\n  \"phases\": {},\n  \
             \"lambda\": {},\n  \
             \"threads\": {threads},\n  \"available_cores\": {cores},\n  \
             \"serial_ms\": {mcf_serial_ms:.3},\n  \"parallel_ms\": {mcf_parallel_ms:.3},\n  \
             \"speedup\": {mcf_speedup:.3},\n  \"bit_identical\": {bit_identical}\n}}\n",
            c.len(),
            sol_s.phases,
            sol_s.lambda,
        ),
    );
}
