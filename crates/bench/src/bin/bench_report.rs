//! Wall-clock report for the two bulk hot paths: all-pairs KSP route
//! precomputation and one Garg–Könemann MCF solve.
//!
//! Three questions, answered in `BENCH_routing.json` / `BENCH_mcf.json`
//! (written to the working directory):
//!
//! 1. **Algorithmic speedup** — the overhauled KSP path (CSR plane graphs,
//!    epoch-stamped scratch, Lawler-optimized Yen with a shared first-path
//!    BFS per source) vs the straightforward pre-overhaul implementation,
//!    which is kept alive as [`pnet_routing::ksp_reference`] and re-timed
//!    *live* on the same machine. The route tables must be identical.
//! 2. **Where the time goes** — a per-stage breakdown of the overhauled
//!    serial precompute: first-path BFS, spur search, table commit.
//! 3. **Parallel sanity** — serial vs `Parallelism::Rayon` wall clock with
//!    byte-identical outputs (degenerates to the serial loop on one core;
//!    pin workers with `RAYON_NUM_THREADS`).
//! 4. **Telemetry overhead** (`BENCH_telemetry.json`) — packet-level wall
//!    clock of a permutation workload with telemetry fully off vs fully on
//!    (every trace category + 50 µs sampler), min-of-N; the FCT vectors
//!    must be bit-identical (the observer cannot perturb the simulation).
//! 5. **Reconvergence under churn** (`BENCH_reconverge.json`, via
//!    `--reconverge-only`) — failure-burst scenarios (single-cable flaps,
//!    1% / 4% random-fraction bursts with restores) replayed one event at a
//!    time against a live router + GK solution. Each event times the
//!    incremental path (`Router::refresh` delta repair + warm-started GK
//!    re-solve) against the full path (rebuild every plane graph, recompute
//!    the all-pairs table from scratch, cold GK solve); sampled events
//!    assert route-table fingerprint identity and warm-λ tolerance
//!    in-process. Runs the 64-ToR preset and the paper-scale 98-ToR preset
//!    at 1 thread, and requires a >= 10x median single-event speedup on the
//!    64-ToR preset.
//! 6. **Planner service saturation** (`BENCH_planner.json`, via
//!    `--planner-only`) — queries/sec and p50/p99 latency of the
//!    throughput-planner service answering admission what-ifs over one
//!    pinned fabric generation: a serial cold pass (every query a fresh GK
//!    solve), a serial warm pass (every query a memo hit, asserted
//!    fingerprint-identical to its cold solve), and a multi-threaded cold
//!    pass on a fresh planner racing concurrent readers against live
//!    `publish_delta` churn — the pinned generation's answers must be
//!    bitwise stable across the publishes.
//! 7. **Event engine throughput** (`BENCH_htsim.json`) — the overhauled
//!    simulator core (calendar/ladder event queue, packet slab arena,
//!    batched same-timestamp dispatch) vs the pre-overhaul engine, kept
//!    alive verbatim as [`pnet_htsim::reference::RefSimulator`] and re-timed
//!    *live* on the same machine and workload: a full host permutation on a
//!    paper-scale fabric (98 ToRs x 7 hosts = 686 hosts, matching the
//!    paper's testbed host count) under 2-subflow LIA MPTCP. Reports
//!    events/sec for both engines; the per-flow FCT records must be
//!    byte-identical or the run aborts.
//!
//! Usage: `bench_report [--quick] [--tors 64] [--degree 8] [--planes 4]
//!                      [--k 32] [--seed 1] [--eps 0.1] [--no-reference]
//!                      [--repeats 5] [--htsim-tors 98] [--htsim-degree 14]
//!                      [--htsim-hosts 7] [--htsim-kb 1000]
//!                      [--htsim-only] [--reconverge-only] [--planner-only]
//!                      [--planner-tors 48] [--planner-queries 160]
//!                      [--planner-threads N]`
//!
//! `--quick` shrinks the instances (16 ToRs, degree 4, 2 planes, k=8;
//! htsim: 16 ToRs x 2 hosts, 100 KB flows) for a CI smoke run; explicit
//! size flags still override it.

use pnet_bench::{banner, f3, Args};
use pnet_flowsim::{commodity, mcf, Commodity};
use pnet_htsim::reference::RefSimulator;
use pnet_htsim::{
    run_to_completion, CcAlgo, FlowSpec, SimConfig, SimTime, Simulator, TelemetryConfig,
};
use pnet_planner::{solution_fingerprint, Planner, PlannerConfig};
use pnet_routing::{host_route, sort_paths, yen, Parallelism, Path, RouteAlgo, Router};
use pnet_topology::{
    assemble_homogeneous, failures, HostId, Jellyfish, LinkDelta, LinkProfile, Network, PlaneId,
    RackId,
};
use pnet_workloads::tm;
use std::time::Instant;

fn write_json(path: &str, body: &str) {
    std::fs::write(path, body).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

/// Precompute the all-pairs route table and return (wall ms, full table dump
/// for the identity check) — the dump is ordered (src, dst, plane).
fn timed_precompute(net: &Network, k: usize, par: Parallelism) -> (f64, Vec<Vec<Path>>) {
    let router = Router::with_parallelism(net, RouteAlgo::Ksp { k }, par);
    let t0 = Instant::now();
    router.precompute_all_pairs_with(par);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let n = router.n_racks();
    let mut dump = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            for p in 0..router.n_planes() {
                dump.push(
                    router
                        .paths_in_plane(PlaneId(p as u16), RackId(a as u32), RackId(b as u32))
                        .to_vec(),
                );
            }
        }
    }
    (ms, dump)
}

/// The same all-pairs table via the pre-overhaul reference implementation,
/// one independent Yen run per (plane, src, dst) — the "before" timing.
fn timed_reference(net: &Network, k: usize) -> (f64, Vec<Vec<Path>>) {
    let router = Router::with_parallelism(net, RouteAlgo::Ksp { k }, Parallelism::Serial);
    let planes = router.plane_graphs();
    let n = router.n_racks();
    let t0 = Instant::now();
    let mut dump = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            for pg in planes.iter() {
                let mut paths = yen::ksp_reference(pg, RackId(a as u32), RackId(b as u32), k);
                sort_paths(&mut paths);
                dump.push(paths);
            }
        }
    }
    (t0.elapsed().as_secs_f64() * 1e3, dump)
}

/// Per-stage serial breakdown of the overhauled precompute.
///
/// * `first_bfs_ms` — a k=1 pass per (plane, src): exactly the shared
///   first-path BFS tree plus per-destination backtracks (Yen's main loop
///   exits before any spur search at k=1).
/// * `spur_ms` — full-k batched KSP time minus the k=1 pass: the Lawler spur
///   searches and candidate heap work.
/// * `commit_ms` — sorting each path set and inserting it into the shared
///   route table (measured over a replica of the router's commit loop).
struct StageBreakdown {
    first_bfs_ms: f64,
    spur_ms: f64,
    commit_ms: f64,
}

fn staged_precompute(net: &Network, k: usize) -> StageBreakdown {
    let router = Router::with_parallelism(net, RouteAlgo::Ksp { k }, Parallelism::Serial);
    let planes = router.plane_graphs();
    let n = router.n_racks();

    let t0 = Instant::now();
    for pg in planes.iter() {
        for src in 0..n {
            std::hint::black_box(yen::ksp_all_destinations(pg, RackId(src as u32), 1));
        }
    }
    let first_bfs_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let mut results: Vec<(u16, u32, Vec<Vec<Path>>)> = Vec::new();
    for pg in planes.iter() {
        for src in 0..n {
            results.push((
                pg.plane.0,
                src as u32,
                yen::ksp_all_destinations(pg, RackId(src as u32), k),
            ));
        }
    }
    let full_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let mut table: std::collections::HashMap<(u16, u32, u32), std::sync::Arc<Vec<Path>>> =
        std::collections::HashMap::new();
    for (plane, src, per_dst) in results {
        for (dst, mut paths) in per_dst.into_iter().enumerate() {
            sort_paths(&mut paths);
            table.insert((plane, src, dst as u32), std::sync::Arc::new(paths));
        }
    }
    std::hint::black_box(&table);
    let commit_ms = t0.elapsed().as_secs_f64() * 1e3;

    StageBreakdown {
        first_bfs_ms,
        spur_ms: (full_ms - first_bfs_ms).max(0.0),
        commit_ms,
    }
}

/// One packet-level run of a fixed permutation workload; returns (wall ms,
/// sorted per-flow FCTs in ps, trace records kept). The FCT vector is the
/// perturbation check: telemetry on and off must produce the same one.
fn timed_sim(
    net: &Network,
    flows: &[(HostId, HostId, Vec<pnet_topology::LinkId>)],
    telemetry: TelemetryConfig,
) -> (f64, Vec<u64>, usize) {
    let cfg = SimConfig {
        telemetry,
        ..SimConfig::default()
    };
    let t0 = Instant::now();
    let mut sim = Simulator::new(net, cfg);
    for (i, (src, dst, route)) in flows.iter().enumerate() {
        sim.start_flow(FlowSpec {
            src: *src,
            dst: *dst,
            size_bytes: 500_000,
            routes: vec![route.clone()],
            cc: CcAlgo::Reno,
            owner_tag: i as u64,
        });
    }
    run_to_completion(&mut sim);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut fcts: Vec<(u64, u64)> = sim
        .records
        .iter()
        .map(|r| (r.owner_tag, r.fct().as_ps()))
        .collect();
    fcts.sort_unstable();
    let n_records = sim.telemetry().map_or(0, |t| t.len());
    (ms, fcts.into_iter().map(|(_, f)| f).collect(), n_records)
}

/// Outcome of one engine run: wall ms, events dispatched, and the full
/// per-flow record vector (sorted by owner tag) for the identity check.
struct EngineRun {
    ms: f64,
    events: u64,
    fcts: Vec<(u64, u64, u64, u64, u64)>,
}

fn fct_vector(records: &[pnet_htsim::FlowRecord]) -> Vec<(u64, u64, u64, u64, u64)> {
    let mut v: Vec<(u64, u64, u64, u64, u64)> = records
        .iter()
        .map(|r| {
            (
                r.owner_tag,
                r.start.as_ps(),
                r.finish.as_ps(),
                r.retransmits,
                r.timeouts,
            )
        })
        .collect();
    v.sort_unstable();
    v
}

/// One run of the overhauled engine on a prebuilt flow set.
fn timed_new_engine(net: &Network, flows: &[FlowSpec]) -> EngineRun {
    let t0 = Instant::now();
    let mut sim = Simulator::new(net, SimConfig::default());
    for spec in flows {
        sim.start_flow(spec.clone());
    }
    run_to_completion(&mut sim);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    EngineRun {
        ms,
        events: sim.events_dispatched(),
        fcts: fct_vector(&sim.records),
    }
}

/// One run of the pre-overhaul engine (binary-heap queue, boxed per-packet
/// allocation) on the same flow set.
fn timed_reference_engine(net: &Network, flows: &[FlowSpec]) -> EngineRun {
    let t0 = Instant::now();
    let mut sim = RefSimulator::new(net, SimConfig::default());
    for spec in flows {
        sim.start_flow(spec.clone());
    }
    sim.run_to_completion();
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    EngineRun {
        ms,
        events: sim.events_dispatched(),
        fcts: fct_vector(&sim.records),
    }
}

fn timed_mcf(
    net: &Network,
    commodities: &[Commodity],
    eps: f64,
    par: Parallelism,
) -> (f64, mcf::McfSolution) {
    let t0 = Instant::now();
    let sol = mcf::solve_with_options(
        net,
        commodities,
        &mcf::PathMode::AnyPath,
        eps,
        mcf::McfOptions {
            parallelism: par,
            ..Default::default()
        },
    );
    (t0.elapsed().as_secs_f64() * 1e3, sol)
}

fn main() {
    let args = Args::parse();
    let quick = args.has("quick");
    let tors: usize = args.get("tors", if quick { 16 } else { 64 });
    let degree: usize = args.get("degree", if quick { 4 } else { 8 });
    let planes: usize = args.get("planes", if quick { 2 } else { 4 });
    let k: usize = args.get("k", if quick { 8 } else { 32 });
    let seed: u64 = args.get("seed", 1);
    let eps: f64 = args.get("eps", 0.1);
    let run_reference = !args.has("no-reference");
    let htsim_only = args.has("htsim-only");

    let threads = Parallelism::Rayon.threads();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    if args.has("reconverge-only") {
        reconverge_section(&args, quick, seed, eps, cores);
        return;
    }

    if args.has("planner-only") {
        planner_section(&args, quick, seed, eps, cores);
        return;
    }

    banner(
        "KSP precompute and GK MCF solve: overhauled vs reference, serial vs parallel",
        &format!(
            "{planes}-plane jellyfish, {tors} racks, degree {degree}; \
             {threads} worker thread(s) on {cores} core(s){}",
            if quick {
                "; --quick smoke instance"
            } else {
                ""
            }
        ),
    );

    let net = assemble_homogeneous(
        &Jellyfish::new(tors, degree, 1, seed),
        planes,
        &LinkProfile::paper_default(),
    );

    // --- Routing: all-pairs KSP precompute. -------------------------------
    if htsim_only {
        htsim_engine_section(&args, quick, seed, cores);
        return;
    }
    let (serial_ms, serial_dump) = timed_precompute(&net, k, Parallelism::Serial);
    let (parallel_ms, parallel_dump) = timed_precompute(&net, k, Parallelism::Rayon);
    let identical = serial_dump == parallel_dump;
    let entries = serial_dump.len();
    let speedup = serial_ms / parallel_ms;
    println!(
        "routing: all-pairs KSP k={k}: serial {} ms, parallel {} ms, \
         speedup {}x, identical tables: {identical}",
        f3(serial_ms),
        f3(parallel_ms),
        f3(speedup)
    );
    assert!(identical, "serial and parallel route tables diverged");

    let stages = staged_precompute(&net, k);
    println!(
        "routing stages (serial): first-path BFS {} ms, spur search {} ms, \
         table commit {} ms",
        f3(stages.first_bfs_ms),
        f3(stages.spur_ms),
        f3(stages.commit_ms)
    );

    let (reference_ms, algo_speedup) = if run_reference {
        let (reference_ms, reference_dump) = timed_reference(&net, k);
        let same = reference_dump == serial_dump;
        println!(
            "routing reference (pre-overhaul Yen): serial {} ms, \
             algorithmic speedup {}x, identical tables: {same}",
            f3(reference_ms),
            f3(reference_ms / serial_ms)
        );
        assert!(same, "overhauled route tables diverged from the reference");
        (Some(reference_ms), Some(reference_ms / serial_ms))
    } else {
        (None, None)
    };

    let json_opt = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x:.3}"));
    write_json(
        "BENCH_routing.json",
        &format!(
            "{{\n  \"benchmark\": \"all_pairs_ksp_precompute\",\n  \
             \"topology\": {{\"kind\": \"jellyfish\", \"n_tors\": {tors}, \"degree\": {degree}, \"planes\": {planes}}},\n  \
             \"k\": {k},\n  \"route_table_entries\": {entries},\n  \
             \"threads\": {threads},\n  \"available_cores\": {cores},\n  \
             \"reference_serial_ms\": {},\n  \"serial_ms\": {serial_ms:.3},\n  \
             \"parallel_ms\": {parallel_ms:.3},\n  \
             \"algorithmic_speedup\": {},\n  \"parallel_speedup\": {speedup:.3},\n  \
             \"stages_serial_ms\": {{\"first_path_bfs\": {:.3}, \"spur_search\": {:.3}, \"table_commit\": {:.3}}},\n  \
             \"identical_tables\": {identical}\n}}\n",
            json_opt(reference_ms),
            json_opt(algo_speedup),
            stages.first_bfs_ms,
            stages.spur_ms,
            stages.commit_ms,
        ),
    );

    // --- MCF: one GK solve on a permutation, AnyPath oracle. --------------
    let c: Vec<Commodity> = commodity::permutation(&tm::random_permutation(tors, seed));
    let (mcf_serial_ms, sol_s) = timed_mcf(&net, &c, eps, Parallelism::Serial);
    let (mcf_parallel_ms, sol_p) = timed_mcf(&net, &c, eps, Parallelism::Rayon);
    let bit_identical = sol_s.lambda.to_bits() == sol_p.lambda.to_bits()
        && sol_s.phases == sol_p.phases
        && sol_s
            .rates
            .iter()
            .zip(&sol_p.rates)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    let mcf_speedup = mcf_serial_ms / mcf_parallel_ms;
    println!(
        "mcf: GK solve ({} commodities, eps {eps}): serial {} ms, parallel {} ms, \
         speedup {}x, lambda {}, bit-identical: {bit_identical}",
        c.len(),
        f3(mcf_serial_ms),
        f3(mcf_parallel_ms),
        f3(mcf_speedup),
        f3(sol_s.lambda)
    );
    assert!(bit_identical, "serial and parallel MCF solutions diverged");
    write_json(
        "BENCH_mcf.json",
        &format!(
            "{{\n  \"benchmark\": \"gk_mcf_solve\",\n  \
             \"topology\": {{\"kind\": \"jellyfish\", \"n_tors\": {tors}, \"degree\": {degree}, \"planes\": {planes}}},\n  \
             \"commodities\": {},\n  \"eps\": {eps},\n  \"phases\": {},\n  \
             \"lambda\": {},\n  \
             \"threads\": {threads},\n  \"available_cores\": {cores},\n  \
             \"serial_ms\": {mcf_serial_ms:.3},\n  \"parallel_ms\": {mcf_parallel_ms:.3},\n  \
             \"speedup\": {mcf_speedup:.3},\n  \"bit_identical\": {bit_identical}\n}}\n",
            c.len(),
            sol_s.phases,
            sol_s.lambda,
        ),
    );

    // --- Telemetry overhead: traced vs untraced packet simulation. --------
    // Min-of-N wall clock over a fixed permutation workload. Telemetry off
    // must cost nothing beyond one branch per hook site; telemetry on (all
    // categories + sampler) buys the trace for the reported premium. Both
    // must produce bit-identical FCT vectors — the observer cannot perturb.
    let repeats: usize = args.get("repeats", if quick { 3 } else { 5 });
    let router = Router::new(&net, RouteAlgo::Ksp { k: 2 });
    let flows: Vec<(HostId, HostId, Vec<pnet_topology::LinkId>)> =
        tm::permutation_pairs(tors, seed)
            .iter()
            .map(|&(a, b)| {
                let i = a;
                let (src, dst) = (HostId(a as u32), HostId(b as u32));
                let p = router.paths_in_plane(
                    PlaneId((i % planes) as u16),
                    net.rack_of_host(src),
                    net.rack_of_host(dst),
                )[0]
                .clone();
                let route =
                    host_route(&net, src, dst, &p).expect("permutation pair must be routable");
                (src, dst, route)
            })
            .collect();
    let on_cfg = TelemetryConfig::all(SimTime::from_us(50));
    let mut off_ms = f64::INFINITY;
    let mut on_ms = f64::INFINITY;
    let mut fcts_off = Vec::new();
    let mut fcts_on = Vec::new();
    let mut trace_records = 0usize;
    for _ in 0..repeats {
        let (ms, fcts, _) = timed_sim(&net, &flows, TelemetryConfig::default());
        off_ms = off_ms.min(ms);
        fcts_off = fcts;
        let (ms, fcts, n) = timed_sim(&net, &flows, on_cfg);
        on_ms = on_ms.min(ms);
        fcts_on = fcts;
        trace_records = n;
    }
    let identical_fcts = fcts_off == fcts_on;
    let overhead_pct = (on_ms / off_ms - 1.0) * 100.0;
    println!(
        "telemetry: {} flows, {repeats} repeats: off {} ms, on {} ms \
         ({} trace records), overhead {}%, identical FCTs: {identical_fcts}",
        flows.len(),
        f3(off_ms),
        f3(on_ms),
        trace_records,
        f3(overhead_pct)
    );
    assert!(
        identical_fcts,
        "telemetry perturbed the simulation: FCT vectors diverged"
    );
    write_json(
        "BENCH_telemetry.json",
        &format!(
            "{{\n  \"benchmark\": \"telemetry_overhead\",\n  \
             \"topology\": {{\"kind\": \"jellyfish\", \"n_tors\": {tors}, \"degree\": {degree}, \"planes\": {planes}}},\n  \
             \"flows\": {},\n  \"repeats\": {repeats},\n  \
             \"sample_interval_us\": 50,\n  \
             \"off_ms\": {off_ms:.3},\n  \"on_ms\": {on_ms:.3},\n  \
             \"overhead_percent\": {overhead_pct:.3},\n  \
             \"trace_records\": {trace_records},\n  \
             \"identical_fcts\": {identical_fcts}\n}}\n",
            flows.len(),
        ),
    );

    htsim_engine_section(&args, quick, seed, cores);
}

/// Splitmix-free xorshift64: deterministic offset stream for the hold model.
fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Draw a schedule offset from the simulator's own event-horizon mix: ACK
/// serialization at 100G (3.2 ns), MTU serialization (120 ns), a ~1 µs
/// propagation hop, and a 1% tail of 10 ms RTO-class timers.
fn hold_offset_ps(state: &mut u64) -> u64 {
    match xorshift(state) % 100 {
        0 => 10_000_000_000,
        1..=30 => 3_200,
        31..=60 => 120_000,
        _ => 1_050_000,
    }
}

/// Hold-model microbenchmark of the event queue in isolation — the classic
/// calendar-queue methodology (pop the earliest event, reschedule it at
/// `popped + offset`, steady-state population held constant). This isolates
/// the tentpole's direct target from the end-to-end number, which is
/// Amdahl-limited by transport work and DRAM misses on simulator state that
/// both engines pay identically. The baseline is a `BinaryHeap` over
/// same-size (32-byte) nodes with the identical (time, seq) order — a
/// *favorable* stand-in for the old engine, whose nodes were 64 bytes.
/// Returns (calendar Mops, heap Mops).
fn queue_hold_microbench(quick: bool) -> (f64, f64) {
    use pnet_htsim::event::{EventKind, EventQueue};
    const PENDING: usize = 1 << 16;
    let holds: usize = if quick { 1_000_000 } else { 8_000_000 };

    // Calendar queue, the production engine's structure.
    let mut q = EventQueue::new();
    let mut rng = 0x243F_6A88_85A3_08D3u64;
    let mut t = 0u64;
    for i in 0..PENDING {
        q.schedule(
            SimTime::from_ps(hold_offset_ps(&mut rng)),
            EventKind::AppTimer {
                app: 0,
                tag: i as u64,
            },
        );
    }
    let mut cal_sum = 0u64;
    let start = Instant::now();
    for i in 0..holds {
        let ev = q.pop().expect("hold model keeps the population constant");
        t = ev.time.as_ps();
        cal_sum = cal_sum.wrapping_add(t);
        q.schedule(
            SimTime::from_ps(t + hold_offset_ps(&mut rng)),
            EventKind::AppTimer {
                app: 0,
                tag: i as u64,
            },
        );
    }
    let cal_mops = holds as f64 / start.elapsed().as_secs_f64() / 1e6;

    // Binary-heap baseline over nodes of the same size and total order.
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct HeapEv {
        time: u64,
        seq: u64,
        payload: u64,
    }
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<HeapEv>> =
        std::collections::BinaryHeap::new();
    let mut rng = 0x243F_6A88_85A3_08D3u64;
    let mut seq = 0u64;
    for i in 0..PENDING {
        heap.push(std::cmp::Reverse(HeapEv {
            time: hold_offset_ps(&mut rng),
            seq,
            payload: i as u64,
        }));
        seq += 1;
    }
    let mut heap_sum = 0u64;
    let start = Instant::now();
    for i in 0..holds {
        let std::cmp::Reverse(ev) = heap
            .pop()
            .expect("hold model keeps the population constant");
        heap_sum = heap_sum.wrapping_add(ev.time);
        heap.push(std::cmp::Reverse(HeapEv {
            time: ev.time + hold_offset_ps(&mut rng),
            seq,
            payload: i as u64,
        }));
        seq += 1;
    }
    let heap_mops = holds as f64 / start.elapsed().as_secs_f64() / 1e6;

    // Same seed, same offsets, same total order: the two structures must pop
    // the identical timestamp sequence or one of them is not a priority
    // queue. (`t` is read so the calendar loop cannot be optimized away.)
    assert_eq!(
        cal_sum, heap_sum,
        "calendar queue and heap disagreed on pop order (last t = {t})"
    );
    (cal_mops, heap_mops)
}

/// Event engine: calendar/arena core vs pre-overhaul engine. A full host
/// permutation at the paper's testbed scale (686 hosts) under 2-subflow LIA
/// MPTCP, run to completion on both engines. Min-of-N wall clock, events/sec,
/// and a byte-identical FCT check: the overhaul must be a pure
/// reimplementation, not a behaviour change.
fn htsim_engine_section(args: &Args, quick: bool, seed: u64, cores: usize) {
    let h_tors: usize = args.get("htsim-tors", if quick { 16 } else { 98 });
    let h_degree: usize = args.get("htsim-degree", if quick { 4 } else { 14 });
    let h_hosts: usize = args.get("htsim-hosts", if quick { 2 } else { 7 });
    let h_kb: u64 = args.get("htsim-kb", if quick { 100 } else { 1000 });
    let h_repeats: usize = args.get("htsim-repeats", if quick { 1 } else { 2 });
    let h_perms: usize = args.get("htsim-perms", if quick { 1 } else { 4 });
    let h_planes: usize = if quick { 2 } else { 3 };
    let h_net = assemble_homogeneous(
        &Jellyfish::new(h_tors, h_degree, h_hosts, seed),
        h_planes,
        &LinkProfile::paper_default(),
    );
    let n_hosts = h_net.n_hosts();
    let h_router = Router::new(&h_net, RouteAlgo::Ksp { k: 2 });
    let h_flows: Vec<FlowSpec> = (0..h_perms)
        .flat_map(|p| {
            tm::random_permutation(n_hosts, seed + p as u64)
                .into_iter()
                .enumerate()
                .map(move |(i, j)| (p * n_hosts + i, i, j))
        })
        .map(|(tag, i, j)| {
            let (src, dst) = (HostId(i as u32), HostId(j as u32));
            let paths =
                h_router.k_best_across_planes(h_net.rack_of_host(src), h_net.rack_of_host(dst), 2);
            let routes: Vec<Vec<pnet_topology::LinkId>> = paths
                .iter()
                .filter_map(|p| host_route(&h_net, src, dst, p))
                .collect();
            FlowSpec {
                src,
                dst,
                size_bytes: h_kb * 1000,
                routes,
                cc: CcAlgo::Lia,
                owner_tag: tag as u64,
            }
        })
        .collect();
    let mut new_run = timed_new_engine(&h_net, &h_flows);
    let mut ref_run = timed_reference_engine(&h_net, &h_flows);
    for _ in 1..h_repeats {
        let r = timed_new_engine(&h_net, &h_flows);
        new_run.ms = new_run.ms.min(r.ms);
        let r = timed_reference_engine(&h_net, &h_flows);
        ref_run.ms = ref_run.ms.min(r.ms);
    }
    let identical_fcts = new_run.fcts == ref_run.fcts;
    let new_eps = new_run.events as f64 / (new_run.ms / 1e3);
    let ref_eps = ref_run.events as f64 / (ref_run.ms / 1e3);
    let engine_speedup = new_eps / ref_eps;
    println!(
        "htsim engine: {n_hosts}-host permutation ({} flows, {h_kb} KB LIA), \
         min of {h_repeats}: reference {} ms ({} ev/s), overhauled {} ms ({} ev/s), \
         events/sec speedup {}x, identical FCT records: {identical_fcts}",
        h_flows.len(),
        f3(ref_run.ms),
        f3(ref_eps / 1e6),
        f3(new_run.ms),
        f3(new_eps / 1e6),
        f3(engine_speedup)
    );
    assert!(
        identical_fcts,
        "event engine overhaul changed behaviour: FCT records diverged from the reference engine"
    );
    let (cal_mops, heap_mops) = queue_hold_microbench(quick);
    let hold_speedup = cal_mops / heap_mops;
    println!(
        "htsim event queue (hold model, 64Ki pending): calendar {} Mops, \
         binary heap {} Mops, speedup {}x",
        f3(cal_mops),
        f3(heap_mops),
        f3(hold_speedup)
    );
    write_json(
        "BENCH_htsim.json",
        &format!(
            "{{\n  \"benchmark\": \"htsim_event_engine\",\n  \
             \"topology\": {{\"kind\": \"jellyfish\", \"n_tors\": {h_tors}, \"degree\": {h_degree}, \
             \"hosts_per_tor\": {h_hosts}, \"planes\": {h_planes}}},\n  \
             \"hosts\": {n_hosts},\n  \"flows\": {},\n  \"flow_kb\": {h_kb},\n  \
             \"cc\": \"lia\",\n  \"repeats\": {h_repeats},\n  \
             \"threads\": 1,\n  \"available_cores\": {cores},\n  \
             \"reference_ms\": {:.3},\n  \"overhauled_ms\": {:.3},\n  \
             \"reference_events\": {},\n  \"overhauled_events\": {},\n  \
             \"reference_events_per_sec\": {:.0},\n  \"overhauled_events_per_sec\": {:.0},\n  \
             \"events_per_sec_speedup\": {engine_speedup:.3},\n  \
             \"queue_hold_calendar_mops\": {cal_mops:.3},\n  \
             \"queue_hold_heap_mops\": {heap_mops:.3},\n  \
             \"queue_hold_speedup\": {hold_speedup:.3},\n  \
             \"identical_fcts\": {identical_fcts}\n}}\n",
            h_flows.len(),
            ref_run.ms,
            new_run.ms,
            ref_run.events,
            new_run.events,
            ref_eps,
            new_eps,
        ),
    );
}

/// Middle value of a sample (mean of the two middles for even sizes).
fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of an empty sample");
    let mut s = xs.to_vec();
    s.sort_by(f64::total_cmp);
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        0.5 * (s[n / 2 - 1] + s[n / 2])
    }
}

/// Full-recompute measurements taken at a sampled churn event: the live
/// router's incremental result is raced against a from-scratch rebuild and
/// the chained warm GK solution against a cold solve on the same link state.
struct SampledEvent {
    full_route_ms: f64,
    cold_mcf_ms: f64,
    warm_mcf_ms: f64,
    cold_phases: usize,
    warm_phases: usize,
    lambda_rel_err: f64,
    /// (full route + cold GK) / (incremental repair + warm GK).
    speedup: f64,
}

/// One churn event's measurements: every event times the incremental repair;
/// sampled events additionally carry the full-recompute race.
struct ChurnEventMeasure {
    incr_route_ms: f64,
    entries_repaired: u64,
    sampled: Option<SampledEvent>,
}

/// Outcome of replaying one churn scenario against a live router + GK state.
struct ScenarioResult {
    name: &'static str,
    events: Vec<ChurnEventMeasure>,
}

impl ScenarioResult {
    fn sampled(&self) -> impl Iterator<Item = &SampledEvent> {
        self.events.iter().filter_map(|e| e.sampled.as_ref())
    }

    fn speedups(&self) -> Vec<f64> {
        self.sampled().map(|s| s.speedup).collect()
    }

    fn json(&self) -> String {
        let incr: Vec<f64> = self.events.iter().map(|e| e.incr_route_ms).collect();
        let repaired: Vec<f64> = self
            .events
            .iter()
            .map(|e| e.entries_repaired as f64)
            .collect();
        let full: Vec<f64> = self.sampled().map(|s| s.full_route_ms).collect();
        let cold: Vec<f64> = self.sampled().map(|s| s.cold_mcf_ms).collect();
        let warm: Vec<f64> = self.sampled().map(|s| s.warm_mcf_ms).collect();
        let cold_ph: Vec<f64> = self.sampled().map(|s| s.cold_phases as f64).collect();
        let warm_ph: Vec<f64> = self.sampled().map(|s| s.warm_phases as f64).collect();
        let speedups = self.speedups();
        let max_err = self
            .sampled()
            .map(|s| s.lambda_rel_err)
            .fold(0.0f64, f64::max);
        let repaired_list = self
            .events
            .iter()
            .map(|e| e.entries_repaired.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let incr_list = incr
            .iter()
            .map(|v| format!("{v:.3}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"name\": \"{}\", \"events\": {}, \"sampled_events\": {},\n      \
             \"entries_repaired\": [{repaired_list}],\n      \
             \"incremental_route_ms\": [{incr_list}],\n      \
             \"entries_repaired_median\": {:.1}, \"entries_repaired_max\": {},\n      \
             \"incremental_route_ms_median\": {:.3}, \"full_route_ms_median\": {:.3},\n      \
             \"warm_mcf_ms_median\": {:.3}, \"cold_mcf_ms_median\": {:.3},\n      \
             \"warm_phases_median\": {:.1}, \"cold_phases_median\": {:.1},\n      \
             \"event_speedup_median\": {:.3}, \"event_speedup_min\": {:.3},\n      \
             \"warm_lambda_max_rel_err\": {max_err:.6}, \"equivalent\": true}}",
            self.name,
            self.events.len(),
            speedups.len(),
            median(&repaired),
            repaired.iter().fold(0.0f64, |a, &b| a.max(b)) as u64,
            median(&incr),
            median(&full),
            median(&warm),
            median(&cold),
            median(&warm_ph),
            median(&cold_ph),
            median(&speedups),
            speedups.iter().fold(f64::INFINITY, |a, &b| a.min(b)),
        )
    }
}

/// Replay one churn schedule event by event. The live router absorbs each
/// event through `Router::refresh` (timed); at sampled events a from-scratch
/// router (plane-graph rebuild + all-pairs precompute) races it, the table
/// fingerprints are asserted identical, and a cold GK solve races a warm
/// re-solve chained from the previous solution (λ asserted within
/// [`mcf::WARM_LAMBDA_TOLERANCE`]). Sampling strides keep the full-recompute
/// cost bounded while the incremental path is timed at every event; the last
/// event is always sampled so the end state is verified.
fn run_churn_scenario(
    name: &'static str,
    base: &Network,
    schedule: &pnet_topology::ChurnSchedule,
    k: usize,
    eps: f64,
    commodities: &[Commodity],
    max_samples: usize,
) -> ScenarioResult {
    let mut net = base.clone();
    let router = Router::with_parallelism(&net, RouteAlgo::Ksp { k }, Parallelism::Serial);
    router.precompute_all_pairs_with(Parallelism::Serial);
    let (_, mut last_sol) = timed_mcf(&net, commodities, eps, Parallelism::Serial);

    let n_events = schedule.events.len();
    let stride = n_events.div_ceil(max_samples).max(1);
    let mut events = Vec::with_capacity(n_events);
    for (i, &ev) in schedule.events.iter().enumerate() {
        ev.apply(&mut net);

        let t0 = Instant::now();
        let stats = router.refresh(&net);
        let incr_route_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(
            !stats.full_rebuild,
            "{name}: churn event {i} fell back to a full rebuild"
        );

        let sampled = if i % stride == 0 || i + 1 == n_events {
            let t0 = Instant::now();
            let fresh = Router::with_parallelism(&net, RouteAlgo::Ksp { k }, Parallelism::Serial);
            fresh.precompute_all_pairs_with(Parallelism::Serial);
            let full_route_ms = t0.elapsed().as_secs_f64() * 1e3;
            assert_eq!(
                router.table_fingerprint(),
                fresh.table_fingerprint(),
                "{name}: incremental table diverged from rebuild at event {i}"
            );

            let (cold_mcf_ms, cold) = timed_mcf(&net, commodities, eps, Parallelism::Serial);
            let t0 = Instant::now();
            let warm = mcf::solve_warm_with_options(
                &net,
                commodities,
                &mcf::PathMode::AnyPath,
                eps,
                mcf::McfOptions {
                    parallelism: Parallelism::Serial,
                    ..Default::default()
                },
                &last_sol,
            );
            let warm_mcf_ms = t0.elapsed().as_secs_f64() * 1e3;
            let lambda_rel_err = ((warm.lambda - cold.lambda) / cold.lambda).abs();
            assert!(
                lambda_rel_err <= mcf::WARM_LAMBDA_TOLERANCE,
                "{name}: warm lambda {} vs cold {} off by {lambda_rel_err:.4} at event {i}",
                warm.lambda,
                cold.lambda
            );
            let speedup = (full_route_ms + cold_mcf_ms) / (incr_route_ms + warm_mcf_ms);
            eprintln!(
                "    [{name} ev{i}] full route {} + cold {} ({} ph) vs incr {} \
                 ({} repaired) + warm {} ({} ph): {}x, rel err {:.4}",
                f3(full_route_ms),
                f3(cold_mcf_ms),
                cold.phases,
                f3(incr_route_ms),
                stats.entries_repaired,
                f3(warm_mcf_ms),
                warm.phases,
                f3(speedup),
                lambda_rel_err
            );
            let s = SampledEvent {
                full_route_ms,
                cold_mcf_ms,
                warm_mcf_ms,
                cold_phases: cold.phases,
                warm_phases: warm.phases,
                lambda_rel_err,
                speedup,
            };
            last_sol = warm;
            Some(s)
        } else {
            None
        };
        events.push(ChurnEventMeasure {
            incr_route_ms,
            entries_repaired: stats.entries_repaired as u64,
            sampled,
        });
    }
    ScenarioResult { name, events }
}

/// `p`-th quantile of a sample by nearest-rank on the sorted values.
fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of an empty sample");
    let mut s = xs.to_vec();
    s.sort_by(f64::total_cmp);
    let idx = ((s.len() as f64 - 1.0) * p).round() as usize;
    s[idx]
}

/// Run every traffic matrix as an admission query against a pinned
/// generation, returning per-query wall latencies (ms) and the full
/// solution fingerprint per matrix (the byte-identity ledger for the
/// warm-pass check).
fn planner_query_pass(
    planner: &Planner,
    generation: &pnet_planner::Generation,
    tms: &[Vec<pnet_flowsim::Commodity>],
    k: usize,
) -> (Vec<f64>, Vec<u64>) {
    let mut latencies = Vec::with_capacity(tms.len());
    let mut fingerprints = Vec::with_capacity(tms.len());
    for tm in tms {
        let t0 = Instant::now();
        let sol = planner
            .solve_ksp_at(generation, tm, k)
            .expect("benchmark matrices are solvable");
        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
        fingerprints.push(solution_fingerprint(&sol));
    }
    (latencies, fingerprints)
}

/// Planner service saturation (`--planner-only`): cold vs warm queries/sec
/// and latency quantiles over one pinned generation, then a multi-threaded
/// cold pass racing live `publish_delta` churn. Three identities are
/// asserted in-process (also under `--quick`): every warm answer is
/// fingerprint-identical to its cold solve, every concurrent answer is
/// fingerprint-identical to the serial pass, and the pinned generation's
/// topology fingerprint never moves while publishes land.
fn planner_section(args: &Args, quick: bool, seed: u64, eps: f64, cores: usize) {
    let tors: usize = args.get("planner-tors", if quick { 16 } else { 48 });
    let degree: usize = args.get("planner-degree", if quick { 4 } else { 8 });
    let planes: usize = args.get("planner-planes", if quick { 2 } else { 4 });
    let k: usize = args.get("planner-k", if quick { 4 } else { 8 });
    let n_queries: usize = args.get("planner-queries", if quick { 24 } else { 160 });
    let n_threads: usize = args.get("planner-threads", cores.min(8)).max(1);
    banner(
        "Planner service saturation: concurrent what-if queries over pinned generations",
        &format!(
            "{planes}-plane jellyfish, {tors} racks, degree {degree}, K={k}; \
             {n_queries} admission queries, {n_threads} reader thread(s) on \
             {cores} core(s){}",
            if quick {
                "; --quick smoke instance"
            } else {
                ""
            }
        ),
    );

    let net = assemble_homogeneous(
        &Jellyfish::new(tors, degree, 1, seed),
        planes,
        &LinkProfile::paper_default(),
    );
    let cfg = PlannerConfig {
        k,
        eps,
        parallelism: Parallelism::Serial,
        ..PlannerConfig::default()
    };
    let tms: Vec<Vec<pnet_flowsim::Commodity>> = (0..n_queries)
        .map(|i| commodity::permutation(&tm::random_permutation(tors, seed + i as u64)))
        .collect();

    // Serial cold pass: every query pays a full GK solve.
    let serial = Planner::with_config(net.clone(), cfg);
    let gen0 = serial.latest();
    let t0 = Instant::now();
    let (cold_lat, cold_fps) = planner_query_pass(&serial, &gen0, &tms, k);
    let cold_wall_s = t0.elapsed().as_secs_f64();
    let cold_qps = n_queries as f64 / cold_wall_s;
    let stats = serial.memo_stats();
    assert_eq!(
        stats.misses as usize, n_queries,
        "every cold query must run a fresh solve"
    );

    // Serial warm pass: the identical queries again, all memo hits, each
    // asserted bitwise identical to the cold solve it replaces.
    let t0 = Instant::now();
    let (warm_lat, warm_fps) = planner_query_pass(&serial, &gen0, &tms, k);
    let warm_wall_s = t0.elapsed().as_secs_f64();
    let warm_qps = n_queries as f64 / warm_wall_s;
    let stats = serial.memo_stats();
    assert_eq!(
        stats.hits as usize, n_queries,
        "every warm query must be served from the memo"
    );
    let memo_identical = cold_fps == warm_fps;
    assert!(
        memo_identical,
        "a memoized solution diverged from its cold solve"
    );
    println!(
        "planner serial: cold {} q/s (p50 {} ms, p99 {} ms), warm {} q/s \
         (p50 {} ms, p99 {} ms), warm speedup {}x, hits bitwise identical: \
         {memo_identical}",
        f3(cold_qps),
        f3(percentile(&cold_lat, 0.50)),
        f3(percentile(&cold_lat, 0.99)),
        f3(warm_qps),
        f3(percentile(&warm_lat, 0.50)),
        f3(percentile(&warm_lat, 0.99)),
        f3(warm_qps / cold_qps)
    );

    // Concurrent cold pass on a fresh planner: reader threads split the
    // query stream over a pinned generation while the main thread publishes
    // link churn. The pinned snapshot must answer identically throughout.
    let concurrent = std::sync::Arc::new(Planner::with_config(net, cfg));
    let pinned = concurrent.latest();
    let pinned_fp = pinned.topology_fingerprint();
    let cable = failures::fabric_cables(pinned.network(), None)[0];
    let chunks: Vec<&[Vec<pnet_flowsim::Commodity>]> =
        tms.chunks(n_queries.div_ceil(n_threads)).collect();
    let n_publishes = 2 * chunks.len();
    let t0 = Instant::now();
    let (conc_lat, conc_fps_chunks): (Vec<Vec<f64>>, Vec<Vec<u64>>) = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                let planner = std::sync::Arc::clone(&concurrent);
                let pinned = std::sync::Arc::clone(&pinned);
                scope.spawn(move || planner_query_pass(&planner, &pinned, chunk, k))
            })
            .collect();
        for _ in 0..chunks.len() {
            for delta in [
                LinkDelta {
                    down: vec![cable],
                    up: Vec::new(),
                },
                LinkDelta {
                    down: Vec::new(),
                    up: vec![cable],
                },
            ] {
                concurrent
                    .publish_delta(&delta)
                    .expect("benchmark cable churn is valid");
            }
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("planner reader thread panicked"))
            .unzip()
    });
    let conc_wall_s = t0.elapsed().as_secs_f64();
    let conc_lat: Vec<f64> = conc_lat.into_iter().flatten().collect();
    let conc_fps: Vec<u64> = conc_fps_chunks.into_iter().flatten().collect();
    let conc_qps = n_queries as f64 / conc_wall_s;
    let pinned_stable = pinned.topology_fingerprint() == pinned_fp && conc_fps == cold_fps;
    assert!(
        pinned_stable,
        "a pinned generation's answers moved while publishes landed"
    );
    assert_eq!(
        concurrent.n_generations(),
        1 + n_publishes,
        "every publish must append a generation"
    );
    println!(
        "planner concurrent: {} q/s across {n_threads} thread(s) \
         ({} publishes mid-flight), p50 {} ms, p99 {} ms, \
         vs serial cold {}x, pinned generation stable: {pinned_stable}",
        f3(conc_qps),
        n_publishes,
        f3(percentile(&conc_lat, 0.50)),
        f3(percentile(&conc_lat, 0.99)),
        f3(conc_qps / cold_qps)
    );

    write_json(
        "BENCH_planner.json",
        &format!(
            "{{\n  \"benchmark\": \"planner_whatif_service\",\n  \
             \"topology\": {{\"kind\": \"jellyfish\", \"n_tors\": {tors}, \"degree\": {degree}, \"planes\": {planes}}},\n  \
             \"k\": {k},\n  \"eps\": {eps},\n  \"queries\": {n_queries},\n  \
             \"threads\": {n_threads},\n  \"available_cores\": {cores},\n  \
             \"serial_cold_qps\": {cold_qps:.3},\n  \
             \"serial_cold_p50_ms\": {:.3},\n  \"serial_cold_p99_ms\": {:.3},\n  \
             \"serial_warm_qps\": {warm_qps:.3},\n  \
             \"serial_warm_p50_ms\": {:.3},\n  \"serial_warm_p99_ms\": {:.3},\n  \
             \"warm_speedup\": {:.3},\n  \
             \"concurrent_qps\": {conc_qps:.3},\n  \
             \"concurrent_p50_ms\": {:.3},\n  \"concurrent_p99_ms\": {:.3},\n  \
             \"concurrent_vs_serial_cold\": {:.3},\n  \
             \"publishes_during_concurrent\": {n_publishes},\n  \
             \"memo_hit_bitwise_identical\": {memo_identical},\n  \
             \"pinned_generation_stable\": {pinned_stable}\n}}\n",
            percentile(&cold_lat, 0.50),
            percentile(&cold_lat, 0.99),
            percentile(&warm_lat, 0.50),
            percentile(&warm_lat, 0.99),
            warm_qps / cold_qps,
            percentile(&conc_lat, 0.50),
            percentile(&conc_lat, 0.99),
            conc_qps / cold_qps,
        ),
    );
}

/// Reconvergence-under-churn benchmark (`--reconverge-only`): per-event
/// incremental repair + warm GK vs full recompute, with in-process
/// equivalence checks, written to `BENCH_reconverge.json`.
fn reconverge_section(_args: &Args, quick: bool, seed: u64, eps: f64, cores: usize) {
    // (label, tors, degree, planes, k, full-recompute samples per scenario)
    let presets: &[(&str, usize, usize, usize, usize, usize)] = if quick {
        &[("16tor_quick", 16, 4, 2, 8, 3)]
    } else {
        &[
            ("64tor", 64, 8, 4, 32, 6),
            ("98tor_paper", 98, 14, 4, 32, 4),
        ]
    };
    banner(
        "Reconvergence under link churn: incremental repair + warm GK vs full recompute",
        &format!(
            "presets: {}; 1 worker thread on {cores} core(s){}",
            presets.iter().map(|p| p.0).collect::<Vec<_>>().join(", "),
            if quick {
                "; --quick smoke instance"
            } else {
                ""
            }
        ),
    );

    let speedup_target = 10.0;
    let mut preset_jsons = Vec::new();
    let mut target_median: Option<f64> = None;
    for &(label, tors, degree, planes, k, max_samples) in presets {
        let net = assemble_homogeneous(
            &Jellyfish::new(tors, degree, 1, seed),
            planes,
            &LinkProfile::paper_default(),
        );
        let commodities: Vec<Commodity> =
            commodity::permutation(&tm::random_permutation(tors, seed));
        let entries = tors * (tors - 1) * planes;
        println!(
            "[{label}] {planes}-plane jellyfish, {tors} racks, degree {degree}, \
             k={k}: {entries} route entries, {} commodities",
            commodities.len()
        );

        let scenarios = [
            (
                "single_cable",
                pnet_topology::ChurnSchedule::single_cable_cycles(
                    &net,
                    if quick { 2 } else { 4 },
                    seed.wrapping_mul(1000) + 17,
                ),
            ),
            (
                "burst_restore_1pct",
                pnet_topology::ChurnSchedule::burst_then_restore(
                    &net,
                    0.01,
                    seed.wrapping_mul(1000) + 29,
                ),
            ),
            (
                "burst_restore_4pct",
                pnet_topology::ChurnSchedule::burst_then_restore(
                    &net,
                    0.04,
                    seed.wrapping_mul(1000) + 43,
                ),
            ),
        ];
        let mut results = Vec::new();
        for (name, schedule) in &scenarios {
            let r = run_churn_scenario(name, &net, schedule, k, eps, &commodities, max_samples);
            let speedups = r.speedups();
            println!(
                "[{label}] {name}: {} events ({} sampled), incr route median {} ms, \
                 event speedup median {}x (min {}x)",
                r.events.len(),
                speedups.len(),
                f3(median(
                    &r.events.iter().map(|e| e.incr_route_ms).collect::<Vec<_>>()
                )),
                f3(median(&speedups)),
                f3(speedups.iter().fold(f64::INFINITY, |a, &b| a.min(b))),
            );
            results.push(r);
        }
        let all_speedups: Vec<f64> = results.iter().flat_map(|r| r.speedups()).collect();
        let preset_median = median(&all_speedups);
        println!(
            "[{label}] median single-event reconvergence speedup: {}x",
            f3(preset_median)
        );
        if label == "64tor" {
            target_median = Some(preset_median);
            assert!(
                preset_median >= speedup_target,
                "64tor median reconvergence speedup {preset_median:.2}x \
                 below the {speedup_target}x target"
            );
        }
        let scenario_jsons = results
            .iter()
            .map(|r| r.json())
            .collect::<Vec<_>>()
            .join(",\n      ");
        preset_jsons.push(format!(
            "{{\"label\": \"{label}\",\n    \
             \"topology\": {{\"kind\": \"jellyfish\", \"n_tors\": {tors}, \
             \"degree\": {degree}, \"planes\": {planes}}},\n    \
             \"k\": {k}, \"route_table_entries\": {entries}, \"commodities\": {},\n    \
             \"scenarios\": [\n      {scenario_jsons}\n    ],\n    \
             \"median_event_speedup\": {preset_median:.3}}}",
            commodities.len()
        ));
    }

    let target_json =
        target_median.map_or("null".to_string(), |m| format!("{}", m >= speedup_target));
    write_json(
        "BENCH_reconverge.json",
        &format!(
            "{{\n  \"benchmark\": \"incremental_reconvergence\",\n  \
             \"eps\": {eps},\n  \"threads\": 1,\n  \"available_cores\": {cores},\n  \
             \"warm_phase_budget\": {:.1},\n  \"warm_lambda_tolerance\": {},\n  \
             \"speedup_target\": {speedup_target},\n  \
             \"speedup_target_preset\": \"64tor\",\n  \
             \"target_met\": {target_json},\n  \
             \"equivalence_checked_in_process\": true,\n  \
             \"presets\": [\n  {}\n  ]\n}}\n",
            mcf::WARM_PHASE_BUDGET,
            mcf::WARM_LAMBDA_TOLERANCE,
            preset_jsons.join(",\n  "),
        ),
    );
}
