//! Extension experiment — mixed-topology P-Nets (paper section 7).
//!
//! "Another type of parallel heterogeneous network can consist of entirely
//! different topologies across the dataplanes. For example, operators can
//! deploy a combination of expander-based topologies and fat trees to
//! handle both low-latency traffic and Hadoop-like data-intensive
//! workloads."
//!
//! Setup: a 4-plane P-Net with one fat-tree plane + three Jellyfish planes,
//! compared against pure parallel fat trees and pure parallel expanders.
//! Two workloads: 1500 B RPCs (latency) and a permutation of bulk transfers
//! (throughput).
//!
//! Expected: the mixed fabric tracks the pure expander on RPC latency
//! (shortest-plane routing finds the expander's short paths) while keeping
//! fat-tree-class bulk behaviour.
//!
//! Usage: `exp_mixed [--k 4] [--expander-degree 4] [--rounds 50]
//!                   [--bulk-size 2m] [--seed 1] [--csv]`

use pnet_bench::{banner, Args, Table};
use pnet_core::{PathPolicy, PathSelector};
use pnet_htsim::apps::{RpcDriver, RpcSlot};
use pnet_htsim::{metrics, run, run_to_completion, FlowSpec, SimConfig, Simulator};
use pnet_routing::{RouteAlgo, Router};
use pnet_topology::{parallel, FatTree, HostId, Jellyfish, LinkProfile, Network, PlaneBuilder};
use pnet_workloads::tm;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn rpc_median(net: &Network, seed: u64, rounds: u64) -> (f64, f64) {
    let n_hosts = net.n_hosts() as u32;
    let mut selector = PathSelector::new(
        Router::new(net, RouteAlgo::Ksp { k: 8 }),
        PathPolicy::ShortestPlane,
    );
    selector.warm();
    let mut flow = 0u64;
    let factory = Box::new(move |a, b, s| {
        flow += 1;
        selector.select(net, a, b, flow, s)
    });
    let mut sim = Simulator::new(net, SimConfig::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let slots: Vec<RpcSlot> = (0..n_hosts)
        .map(|h| {
            let mut r = StdRng::seed_from_u64(rng.random());
            RpcSlot {
                client: HostId(h),
                next_server: Box::new(move || loop {
                    let s = r.random_range(0..n_hosts);
                    if s != h {
                        return HostId(s);
                    }
                }),
            }
        })
        .collect();
    let mut driver = RpcDriver::start(&mut sim, slots, factory, 1500, 1500, rounds);
    run(&mut sim, &mut driver, None);
    (
        metrics::percentile(&driver.round_times_us, 50.0),
        metrics::percentile(&driver.round_times_us, 99.0),
    )
}

fn bulk_mean_fct(net: &Network, seed: u64, size: u64, planes: usize) -> f64 {
    let n_hosts = net.n_hosts();
    let mut selector = PathSelector::new(
        Router::new(net, RouteAlgo::Ksp { k: 8 }),
        PathPolicy::PlaneKsp { per_plane: 1 },
    );
    selector.warm();
    let mut flow = 0u64;
    let mut factory = move |a, b, s| {
        flow += 1;
        selector.select(net, a, b, flow, s)
    };
    let _ = planes;
    let mut sim = Simulator::new(net, SimConfig::default());
    for (a, b) in tm::permutation_pairs(n_hosts, seed + 3) {
        let (routes, cc) = factory(HostId(a as u32), HostId(b as u32), size);
        sim.start_flow(FlowSpec {
            src: HostId(a as u32),
            dst: HostId(b as u32),
            size_bytes: size,
            routes,
            cc,
            owner_tag: 0,
        });
    }
    run_to_completion(&mut sim);
    metrics::mean(&metrics::fcts_us(&sim.records))
}

fn main() {
    let args = Args::parse();
    let k: usize = args.get("k", 8);
    let degree: usize = args.get("expander-degree", 8);
    let rounds: u64 = args.get("rounds", 30);
    let bulk_size: u64 = args.get_list("bulk-size", &[2_000_000])[0];
    let seed: u64 = args.get("seed", 1);
    let csv = args.has("csv");

    let base = LinkProfile::paper_default();
    let ft = FatTree::three_tier(k);
    let n_tors = ft.n_racks();
    let planes = 4;

    banner(
        "Extension — mixed-topology P-Net (fat tree + expanders, paper section 7)",
        &format!(
            "{} hosts, 4 planes; mixed = 1 fat-tree plane + 3 jellyfish planes (degree {degree})",
            ft.n_hosts()
        ),
    );

    let pure_ft = pnet_topology::assemble_homogeneous(&ft, planes, &base);
    let proto = Jellyfish::new(n_tors, degree, k / 2, 0);
    let pure_jf = parallel::jellyfish_network(
        pnet_topology::NetworkClass::ParallelHeterogeneous,
        proto,
        planes,
        seed,
        &base,
    );
    let mixed = parallel::mixed_fattree_expander(k, planes - 1, degree, seed, &base);

    let mut table = Table::new(
        vec!["fabric", "RPC median", "RPC p99", "bulk mean FCT (perm)"],
        csv,
    );
    for (name, net) in [
        ("parallel fat tree x4", &pure_ft),
        ("parallel jellyfish x4", &pure_jf),
        ("mixed (1 ft + 3 jf)", &mixed),
    ] {
        let (med, p99) = rpc_median(net, seed, rounds);
        let bulk = bulk_mean_fct(net, seed, bulk_size, planes);
        table.row(vec![
            name.to_string(),
            format!("{med:.2}us"),
            format!("{p99:.2}us"),
            format!("{bulk:.1}us"),
        ]);
    }
    table.print();
    println!();
    println!(
        "expected: mixed tracks the expander fabric on RPC latency (short paths\n\
         exist in the jellyfish planes) while keeping fat-tree-class bulk FCTs"
    );
}
