//! Figure 9: small-flow FCT versus flow size on a 4-plane Jellyfish P-Net
//! (packet-level simulation, permutation traffic).
//!
//! Paper setup: 686-host Jellyfish, flows of 100 kB .. 1 GB, best settings
//! per network (single-path for serial networks, 4-way KSP MPTCP for the
//! parallel ones). Paper shape: up to ~10 MB parallel networks beat even
//! serial high-bandwidth (more slow-start paths before steady state); at
//! ~100 MB the advantage over serial low-bw shrinks (MPTCP probing cost);
//! at 1 GB multipath pays off again.
//!
//! Scale note: the default network is 64 hosts (16 ToRs x 4) and sizes up
//! to 100 MB; `--tors 98 --degree 7 --hosts-per-tor 7 --sizes
//! 100k,1m,10m,100m,1g` is the paper configuration (slow).
//!
//! Usage: `exp_fig9 [--tors 16] [--degree 5] [--hosts-per-tor 4]
//!                  [--planes 4] [--sizes 100k,1m,10m,100m] [--seed 1]
//!                  [--kway 4] [--single] [--uncoupled] [--sweep-cutoff]
//!                  [--csv]`

use pnet_bench::{banner, f3, human_bytes, min_index_total, setups, Args, Table};
use pnet_core::{PathPolicy, TopologyKind};
use pnet_htsim::{metrics, run_to_completion, CcAlgo, FlowSpec, SimConfig, Simulator};
use pnet_topology::{HostId, NetworkClass};
use pnet_workloads::tm;

#[allow(clippy::too_many_arguments)]
fn mean_fct_us(
    topology: TopologyKind,
    class: NetworkClass,
    planes: usize,
    seed: u64,
    policy: PathPolicy,
    size: u64,
    force_uncoupled: bool,
) -> f64 {
    let pnet = setups::build(topology, class, planes, seed);
    let n_hosts = pnet.net.n_hosts();
    let mut factory = setups::make_factory(&pnet.net, pnet.selector(policy));
    let mut sim = Simulator::new(&pnet.net, SimConfig::default());
    for (a, b) in tm::permutation_pairs(n_hosts, seed + 7) {
        let (routes, mut cc) = factory(HostId(a as u32), HostId(b as u32), size);
        if force_uncoupled && cc == CcAlgo::Lia {
            cc = CcAlgo::Uncoupled;
        }
        sim.start_flow(FlowSpec {
            src: HostId(a as u32),
            dst: HostId(b as u32),
            size_bytes: size,
            routes,
            cc,
            owner_tag: 0,
        });
    }
    run_to_completion(&mut sim);
    metrics::mean(&metrics::fcts_us(&sim.records))
}

fn main() {
    let args = Args::parse();
    let tors: usize = args.get("tors", 16);
    let degree: usize = args.get("degree", 5);
    let hpt: usize = args.get("hosts-per-tor", 4);
    let planes: usize = args.get("planes", 4);
    let seed: u64 = args.get("seed", 1);
    let kway: usize = args.get("kway", 4);
    let sizes = args.get_list("sizes", &[100_000, 1_000_000, 10_000_000, 100_000_000]);
    let csv = args.has("csv");
    let single = args.has("single");
    let uncoupled = args.has("uncoupled");

    let topology = TopologyKind::Jellyfish {
        n_tors: tors,
        degree,
        hosts_per_tor: hpt,
    };

    banner(
        "Figure 9 — small-flow FCT vs flow size (4-plane Jellyfish P-Net)",
        &format!(
            "{} hosts, permutation traffic; serial: single path; parallel: {}-way KSP MPTCP{}",
            tors * hpt,
            kway,
            if uncoupled {
                " (uncoupled ablation)"
            } else {
                ""
            }
        ),
    );

    let classes = setups::classes_for(topology);
    let mut header = vec!["size".to_string()];
    header.extend(classes.iter().map(|c| c.label().to_string()));
    header.push("best".into());
    let mut table = Table::new(header, csv);
    let mut norm_header = vec!["size (speedup)".to_string()];
    norm_header.extend(classes.iter().map(|c| c.label().to_string()));
    let mut norm_table = Table::new(norm_header, csv);

    for &size in &sizes {
        let mut row = vec![human_bytes(size)];
        let mut vals = Vec::new();
        for &class in &classes {
            let policy = match class {
                NetworkClass::SerialLow | NetworkClass::SerialHigh => {
                    setups::single_path_policy(class)
                }
                _ if single => setups::single_path_policy(class),
                _ => PathPolicy::PlaneKsp {
                    per_plane: (kway / planes).max(1),
                },
            };
            let fct = mean_fct_us(topology, class, planes, seed, policy, size, uncoupled);
            vals.push(fct);
            row.push(format!("{fct:.1}us"));
        }
        let best = classes
            [min_index_total(&vals).expect("invariant: one fct per class, classes non-empty")]
        .label();
        row.push(best.to_string());
        table.row(row);

        let mut nrow = vec![human_bytes(size)];
        for v in &vals {
            nrow.push(f3(vals[0] / v)); // speedup over serial low-bw
        }
        norm_table.row(nrow);
    }
    table.print();
    println!();
    println!("speedup over serial low-bw (higher is better):");
    norm_table.print();
    println!();
    println!(
        "paper: parallel wins below ~10MB (even over serial high-bw); \
         ~100MB flows gain less from multipath; >=1GB gains again"
    );

    if args.has("sweep-cutoff") {
        println!();
        banner(
            "Ablation — size-threshold cutoff sweep (paper's 100 MB rule)",
            "mean FCT of the size-threshold policy at different cutoffs, parallel heterogeneous",
        );
        let mut t = Table::new(vec!["cutoff", "mean FCT @10MB", "mean FCT @100MB"], csv);
        for cutoff in [1_000_000u64, 10_000_000, 100_000_000, 1_000_000_000] {
            let policy = PathPolicy::SizeThreshold {
                cutoff_bytes: cutoff,
                small: Box::new(PathPolicy::ShortestPlane),
                large: Box::new(PathPolicy::MultipathKsp { k: kway }),
            };
            let f10 = mean_fct_us(
                topology,
                NetworkClass::ParallelHeterogeneous,
                planes,
                seed,
                policy.clone(),
                10_000_000,
                false,
            );
            let f100 = mean_fct_us(
                topology,
                NetworkClass::ParallelHeterogeneous,
                planes,
                seed,
                policy,
                100_000_000,
                false,
            );
            t.row(vec![
                human_bytes(cutoff),
                format!("{f10:.1}us"),
                format!("{f100:.1}us"),
            ]);
        }
        t.print();
    }
}
