//! Figure 6: fat-tree throughput under (a) all-to-all + ECMP, (b)
//! permutation + ECMP, and (c) permutation + MPTCP/KSP multipath sweeps.
//!
//! Paper shape: all-to-all saturates parallel fabrics even with ECMP
//! (6a, ~N x); permutation barely improves with more planes under ECMP
//! (6b, ~1 x); with K-way multipath, a serial fat tree saturates at K = 8
//! while N-plane P-Nets need ~N x as many subflows (6c, circled points).
//!
//! Scale note: defaults use a k=8 fat tree (128 hosts) instead of the
//! paper's k=16 (1024 hosts) so the run finishes in seconds; pass `--k 16`
//! for paper scale. Throughput is normalized against the serial
//! low-bandwidth network as in the paper.
//!
//! Usage: `exp_fig6 [--k 8] [--seed 1] [--eps 0.1] [--ksweep 1,2,4,8,16,32]
//!                  [--csv]`

use pnet_bench::{banner, f3, Args, Table};
use pnet_flowsim::{commodity, throughput, Commodity};
use pnet_topology::{assemble_homogeneous, FatTree, LinkProfile, Network};
use pnet_workloads::tm;

fn networks(k: usize, plane_counts: &[usize]) -> Vec<(String, Network)> {
    let base = LinkProfile::paper_default();
    let ft = FatTree::three_tier(k);
    let mut nets = vec![(
        "serial low-bw".to_string(),
        assemble_homogeneous(&ft, 1, &base),
    )];
    for &n in plane_counts {
        nets.push((
            format!("parallel {n}x"),
            assemble_homogeneous(&ft, n, &base),
        ));
    }
    nets
}

fn main() {
    let args = Args::parse();
    let k: usize = args.get("k", 8);
    let seed: u64 = args.get("seed", 1);
    let eps: f64 = args.get("eps", 0.1);
    let csv = args.has("csv");
    let ksweep: Vec<u64> = args.get_list("ksweep", &[1, 2, 4, 8, 16, 32]);

    let hosts = FatTree::three_tier(k).n_hosts();
    let plane_counts = [2usize, 4, 8];

    banner(
        "Figure 6a/6b — fat-tree ECMP throughput (normalized to serial low-bw)",
        &format!("k={k} fat tree, {hosts} hosts; single-path ECMP, max-min rates"),
    );

    let a2a: Vec<Commodity> = commodity::all_to_all(hosts);
    let perm: Vec<Commodity> = commodity::permutation(&tm::random_permutation(hosts, seed));

    let nets = networks(k, &plane_counts);
    let mut ecmp_table = Table::new(vec!["network", "all-to-all", "permutation"], csv);
    let mut base_a2a = 0.0;
    let mut base_perm = 0.0;
    for (i, (name, net)) in nets.iter().enumerate() {
        let t_a2a = throughput::ecmp_throughput(net, &a2a);
        let t_perm = throughput::ecmp_throughput(net, &perm);
        if i == 0 {
            base_a2a = t_a2a;
            base_perm = t_perm;
        }
        ecmp_table.row(vec![
            name.clone(),
            f3(t_a2a / base_a2a),
            f3(t_perm / base_perm),
        ]);
    }
    ecmp_table.print();
    println!();
    println!("paper: all-to-all scales ~Nx; permutation stays ~1x under ECMP");
    println!();

    banner(
        "Figure 6c — permutation throughput vs multipath level K (MPTCP + KSP)",
        "normalized to serial low-bw saturated value; * marks K that saturates (>=95% of Nx)",
    );

    let mut sweep_nets = vec![("serial low-bw".to_string(), 1usize)];
    sweep_nets.extend([2usize, 4].iter().map(|&n| (format!("parallel {n}x"), n)));

    // Serial baseline: its saturated (max-K) throughput.
    let base = LinkProfile::paper_default();
    let ft = FatTree::three_tier(k);
    let serial = assemble_homogeneous(&ft, 1, &base);
    let (serial_sat, _) =
        throughput::ksp_multipath_throughput(&serial, &perm, *ksweep.last().unwrap() as usize, eps);

    let mut header = vec!["K".to_string()];
    header.extend(sweep_nets.iter().map(|(n, _)| n.clone()));
    let mut table = Table::new(header, csv);

    let mut saturated: Vec<Option<u64>> = vec![None; sweep_nets.len()];
    for &kk in &ksweep {
        let mut row = vec![kk.to_string()];
        for (col, (_, n_planes)) in sweep_nets.iter().enumerate() {
            let net = assemble_homogeneous(&ft, *n_planes, &base);
            let (t, _) = throughput::ksp_multipath_throughput(&net, &perm, kk as usize, eps);
            let norm = t / serial_sat;
            let target = 0.95 * *n_planes as f64;
            let mark = if norm >= target && saturated[col].is_none() {
                saturated[col] = Some(kk);
                "*"
            } else {
                ""
            };
            row.push(format!("{}{}", f3(norm), mark));
        }
        table.row(row);
    }
    table.print();
    println!();
    for ((name, n), sat) in sweep_nets.iter().zip(&saturated) {
        match sat {
            Some(kk) => println!("{name}: saturates ({n}x) at K = {kk}"),
            None => println!("{name}: did not reach {n}x within the sweep"),
        }
    }
    println!("paper: serial saturates at K=8; 2 planes need K=16; 4 planes need K=32");
}
