//! Figure 13: published-trace-driven flow completion times.
//!
//! (a) flow-size CDFs of the five traces; (b) datamining \[22\] and (c)
//! websearch \[6\] FCT distributions on Jellyfish networks at 100/400G with
//! four closed-loop flows per host and single-path routing.
//!
//! Paper shape: datamining (mice-dominated) behaves like the RPC study —
//! parallel heterogeneous lowest latency via shorter paths; websearch
//! (byte-heavy) behaves like the shuffle study — P-Nets approach serial
//! high-bw throughput and beat serial low-bw substantially.
//!
//! Scale note: flow sizes are scaled by `--scale` (default 0.01) and the
//! run lasts `--ms` of simulated time, keeping runs in seconds while
//! preserving each distribution's shape relative to the network BDP.
//!
//! Usage: `exp_fig13 [--tors 24] [--degree 5] [--hosts-per-tor 4]
//!                   [--planes 4] [--flows-per-host 4] [--ms 20]
//!                   [--scale 0.01] [--seed 1] [--traces datamining,websearch]
//!                   [--csv]`

use pnet_bench::{banner, setups, Args, Table};
use pnet_core::TopologyKind;
use pnet_htsim::apps::{ClosedLoopDriver, ClosedLoopSlot};
use pnet_htsim::{metrics, run, SimTime, Simulator};
use pnet_topology::{HostId, NetworkClass};
use pnet_workloads::Trace;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

#[allow(clippy::too_many_arguments)]
fn trace_fcts(
    topology: TopologyKind,
    class: NetworkClass,
    planes: usize,
    seed: u64,
    trace: Trace,
    scale: f64,
    rto_us: u64,
    flows_per_host: usize,
    stop_ms: u64,
) -> Vec<f64> {
    let pnet = setups::build(topology, class, planes, seed);
    let n_hosts = pnet.net.n_hosts() as u32;
    let policy = setups::single_path_policy(class);
    let factory = setups::make_factory(&pnet.net, pnet.selector(policy));
    let cdf = trace.cdf().scaled(scale);
    let mut sim = Simulator::new(&pnet.net, setups::config_with_rto_us(rto_us));
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF13);
    let mut slots = Vec::new();
    for h in 0..n_hosts {
        for _ in 0..flows_per_host {
            let mut dst_rng = StdRng::seed_from_u64(rng.random());
            let mut size_rng = StdRng::seed_from_u64(rng.random());
            let cdf = cdf.clone();
            slots.push(ClosedLoopSlot {
                src: HostId(h),
                next_dst: Box::new(move || loop {
                    let s = dst_rng.random_range(0..n_hosts);
                    if s != h {
                        return HostId(s);
                    }
                }),
                next_size: Box::new(move || cdf.sample(&mut size_rng)),
            });
        }
    }
    let stop = SimTime::from_ms(stop_ms);
    let mut driver = ClosedLoopDriver::start(&mut sim, slots, factory, stop);
    run(
        &mut sim,
        &mut driver,
        Some(stop + SimTime::from_ms(stop_ms)),
    );
    metrics::fcts_us(&driver.completed)
}

fn main() {
    let args = Args::parse();
    let tors: usize = args.get("tors", 24);
    let degree: usize = args.get("degree", 5);
    let hpt: usize = args.get("hosts-per-tor", 4);
    let planes: usize = args.get("planes", 4);
    let fph: usize = args.get("flows-per-host", 4);
    let ms: u64 = args.get("ms", 20);
    let scale: f64 = args.get("scale", 0.01);
    let seed: u64 = args.get("seed", 1);
    let rto_us: u64 = args.get("rto-us", 1_000);
    let csv = args.has("csv");
    let trace_names = args.get_str("traces").unwrap_or("datamining,websearch");

    let topology = TopologyKind::Jellyfish {
        n_tors: tors,
        degree,
        hosts_per_tor: hpt,
    };

    banner(
        "Figure 13a — flow-size distributions of the published traces",
        "percentiles of each digitized CDF (bytes)",
    );
    let mut t = Table::new(vec!["trace", "p10", "p50", "p90", "p99", "max"], csv);
    for trace in Trace::all() {
        let cdf = trace.cdf();
        t.row(vec![
            trace.label().to_string(),
            cdf.quantile(0.10).to_string(),
            cdf.quantile(0.50).to_string(),
            cdf.quantile(0.90).to_string(),
            cdf.quantile(0.99).to_string(),
            cdf.max_bytes().to_string(),
        ]);
    }
    t.print();

    let traces: Vec<Trace> = trace_names
        .split(',')
        .map(|n| match n.trim() {
            "websearch" => Trace::Websearch,
            "datamining" => Trace::Datamining,
            "webserver" => Trace::Webserver,
            "cache" => Trace::Cache,
            "hadoop" => Trace::Hadoop,
            other => panic!("unknown trace {other:?}"),
        })
        .collect();

    let classes = setups::classes_for(topology);
    for trace in traces {
        println!();
        banner(
            &format!(
                "Figure 13{} — {} trace FCTs (closed loop, {} flows/host, sizes x{})",
                if trace == Trace::Datamining { "b" } else { "c" },
                trace.label(),
                fph,
                scale
            ),
            "FCT percentiles in microseconds; single-path routing",
        );
        let mut table = Table::new(
            vec!["network", "flows", "p25", "median", "p90", "p99", "mean"],
            csv,
        );
        for &class in &classes {
            let fcts = trace_fcts(topology, class, planes, seed, trace, scale, rto_us, fph, ms);
            table.row(vec![
                class.label().to_string(),
                fcts.len().to_string(),
                format!("{:.1}", metrics::percentile(&fcts, 25.0)),
                format!("{:.1}", metrics::percentile(&fcts, 50.0)),
                format!("{:.1}", metrics::percentile(&fcts, 90.0)),
                format!("{:.1}", metrics::percentile(&fcts, 99.0)),
                format!("{:.1}", metrics::mean(&fcts)),
            ]);
        }
        table.print();
    }
    println!();
    println!(
        "paper: datamining (mice) — hetero P-Net lowest FCT via shorter paths; \
         websearch (bulk) — P-Nets near serial high-bw, far above serial low-bw"
    );
}
