//! Appendix A (Figures 16–20): trace-driven FCT distributions for all five
//! published traces, at two speed generations (10/40G and 100/400G) and on
//! both topology families (fat tree and Jellyfish).
//!
//! Paper shape: at 10/40G P-Nets win broadly via load balancing and
//! multi-flow tolerance (close to serial high-bw); at 100/400G the
//! heterogeneous path-length advantage dominates, letting some short flows
//! beat even the ideal serial 400G network.
//!
//! Scale note: defaults are small (tens of hosts, 0.01x sizes). Runs
//! 5 traces x 2 speeds x 2 topologies x network classes; allow ~a minute.
//!
//! Usage: `exp_appendix [--planes 4] [--flows-per-host 2] [--ms 10]
//!                      [--scale 0.01] [--seed 1] [--traces all] [--csv]`

use pnet_bench::{banner, setups, Args, Table};
use pnet_core::TopologyKind;
use pnet_htsim::apps::{ClosedLoopDriver, ClosedLoopSlot};
use pnet_htsim::{metrics, run, SimTime, Simulator};
use pnet_topology::{HostId, LinkProfile, NetworkClass};
use pnet_workloads::Trace;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let args = Args::parse();
    let planes: usize = args.get("planes", 4);
    let fph: usize = args.get("flows-per-host", 2);
    let ms: u64 = args.get("ms", 10);
    let scale: f64 = args.get("scale", 0.01);
    let seed: u64 = args.get("seed", 1);
    let rto_us: u64 = args.get("rto-us", 1_000);
    let csv = args.has("csv");

    banner(
        "Appendix A (Figures 16-20) — trace FCTs across speeds and topologies",
        &format!("{planes} planes, {fph} closed-loop flows/host, sizes x{scale}"),
    );

    let topologies = [
        ("fat tree", TopologyKind::FatTree { k: 4 }),
        (
            "jellyfish",
            TopologyKind::Jellyfish {
                n_tors: 8,
                degree: 3,
                hosts_per_tor: 2,
            },
        ),
    ];
    let speeds = [("10/40G", 10u64), ("100/400G", 100u64)];

    for trace in Trace::all() {
        for (topo_name, topology) in &topologies {
            for (speed_name, gbps) in &speeds {
                println!();
                println!(
                    "--- {} | {} | {} (median / p90 / p99 FCT, us) ---",
                    trace.label(),
                    topo_name,
                    speed_name
                );
                let classes = setups::classes_for(*topology);
                let mut table = Table::new(vec!["network", "flows", "median", "p90", "p99"], csv);
                for &class in &classes {
                    let fcts = run_one(
                        *topology, class, planes, seed, trace, scale, rto_us, fph, ms, *gbps,
                    );
                    if fcts.is_empty() {
                        table.row(vec![
                            class.label().to_string(),
                            "0".into(),
                            "-".into(),
                            "-".into(),
                            "-".into(),
                        ]);
                        continue;
                    }
                    table.row(vec![
                        class.label().to_string(),
                        fcts.len().to_string(),
                        format!("{:.1}", metrics::percentile(&fcts, 50.0)),
                        format!("{:.1}", metrics::percentile(&fcts, 90.0)),
                        format!("{:.1}", metrics::percentile(&fcts, 99.0)),
                    ]);
                }
                table.print();
            }
        }
    }
    println!();
    println!(
        "paper: at 10/40G P-Nets track serial high-bw; at 100/400G heterogeneous \
         P-Nets can beat serial 400G on short flows via shorter paths"
    );
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    topology: TopologyKind,
    class: NetworkClass,
    planes: usize,
    seed: u64,
    trace: Trace,
    scale: f64,
    rto_us: u64,
    fph: usize,
    ms: u64,
    gbps: u64,
) -> Vec<f64> {
    let mut spec = pnet_core::PNetSpec::new(topology, class, planes, seed);
    spec.profile = LinkProfile::speed_gbps(gbps);
    let pnet = spec.build();
    let n_hosts = pnet.net.n_hosts() as u32;
    let policy = setups::single_path_policy(class);
    let factory = setups::make_factory(&pnet.net, pnet.selector(policy));
    let cdf = trace.cdf().scaled(scale);
    let mut sim = Simulator::new(&pnet.net, setups::config_with_rto_us(rto_us));
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA99);
    let mut slots = Vec::new();
    for h in 0..n_hosts {
        for _ in 0..fph {
            let mut dst_rng = StdRng::seed_from_u64(rng.random());
            let mut size_rng = StdRng::seed_from_u64(rng.random());
            let cdf = cdf.clone();
            slots.push(ClosedLoopSlot {
                src: HostId(h),
                next_dst: Box::new(move || loop {
                    let s = dst_rng.random_range(0..n_hosts);
                    if s != h {
                        return HostId(s);
                    }
                }),
                next_size: Box::new(move || cdf.sample(&mut size_rng)),
            });
        }
    }
    let stop = SimTime::from_ms(ms);
    let mut driver = ClosedLoopDriver::start(&mut sim, slots, factory, stop);
    run(&mut sim, &mut driver, Some(stop + SimTime::from_ms(ms)));
    metrics::fcts_us(&driver.completed)
}
