//! Aligned-table and CSV output for the experiment binaries.

/// A simple text table with a header row.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    /// When true, also print the rows in CSV form after the table.
    pub csv: bool,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>, csv: bool) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            csv,
        }
    }

    /// Append a row (stringified cells).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render the aligned table (plus CSV if enabled) to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", line(&self.header));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            println!("{}", line(row));
        }
        if self.csv {
            println!();
            println!("# csv");
            println!("{}", self.header.join(","));
            for row in &self.rows {
                println!("{}", row.join(","));
            }
        }
    }
}

/// Format a float with 3 significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float as a percentage of a baseline.
pub fn pct(x: f64, base: f64) -> String {
    format!("{:.1}%", 100.0 * x / base)
}

/// Format bytes human-readably (1.5MB etc.).
pub fn human_bytes(b: u64) -> String {
    if b >= 1_000_000_000 {
        format!("{}GB", b / 1_000_000_000)
    } else if b >= 1_000_000 {
        format!("{}MB", b / 1_000_000)
    } else if b >= 1_000 {
        format!("{}kB", b / 1_000)
    } else {
        format!("{b}B")
    }
}

/// Index of the smallest value under `f64::total_cmp`. Total order means a
/// NaN (which sorts above every number) can never win the comparison or
/// panic a `partial_cmp().unwrap()`; `None` only for an empty slice.
pub fn min_index_total(vals: &[f64]) -> Option<usize> {
    vals.iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
}

/// Print an experiment banner.
pub fn banner(title: &str, detail: &str) {
    println!("=== {title} ===");
    if !detail.is_empty() {
        println!("{detail}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_row_widths_checked() {
        let mut t = Table::new(vec!["a", "b"], false);
        t.row(vec!["1", "2"]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn bad_row_rejected() {
        let mut t = Table::new(vec!["a", "b"], false);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn human_bytes_scales() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(100_000), "100kB");
        assert_eq!(human_bytes(30_000_000), "30MB");
        assert_eq!(human_bytes(2_000_000_000), "2GB");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(80.1, 100.0), "80.1%");
    }

    #[test]
    fn min_index_total_survives_nan() {
        // The `partial_cmp().unwrap()` this replaced panicked on any NaN;
        // under total_cmp a NaN sorts above every number and simply loses.
        assert_eq!(min_index_total(&[3.0, f64::NAN, 1.0, 2.0]), Some(2));
        assert_eq!(min_index_total(&[f64::NAN, f64::NAN]), Some(0));
        assert_eq!(min_index_total(&[2.0, 1.0, 1.0]), Some(1));
        assert_eq!(min_index_total(&[]), None);
    }
}
