//! Shared experiment scaffolding: the four comparison networks, per-class
//! path policies, and flow factories for the packet simulator.

use pnet_core::{PNet, PNetSpec, PathPolicy, PathSelector, TopologyKind};
use pnet_htsim::apps::FlowFactory;
use pnet_htsim::{SimConfig, SimTime};
use pnet_topology::{Network, NetworkClass};

/// A [`SimConfig`] with the minimum RTO set to `us` microseconds.
///
/// The paper tunes min-RTO to 10 ms (DCTCP's suggestion) at its full
/// workload scale; experiments that scale flow sizes down by 10-100x scale
/// the timeout along with them so that loss-recovery dynamics keep the same
/// *relative* cost (otherwise a scaled-down run is pure-RTO quantized).
pub fn config_with_rto_us(us: u64) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.tcp.min_rto = SimTime::from_us(us);
    cfg
}

/// The network classes applicable to a topology family (fat trees have no
/// heterogeneous variant).
pub fn classes_for(topology: TopologyKind) -> Vec<NetworkClass> {
    match topology {
        TopologyKind::FatTree { .. } => vec![
            NetworkClass::SerialLow,
            NetworkClass::ParallelHomogeneous,
            NetworkClass::SerialHigh,
        ],
        _ => NetworkClass::all().to_vec(),
    }
}

/// Build one comparison network.
pub fn build(topology: TopologyKind, class: NetworkClass, n_planes: usize, seed: u64) -> PNet {
    PNetSpec::new(topology, class, n_planes, seed).build()
}

/// The paper's *single-path* configuration per class:
///
/// * serial networks: one plane, single shortest path;
/// * parallel homogeneous: ECMP hash (identical planes — no hop advantage
///   to exploit, load balancing is all that matters);
/// * parallel heterogeneous: shortest-plane (exploit the hop-count
///   advantage, section 5.2.1).
pub fn single_path_policy(class: NetworkClass) -> PathPolicy {
    match class {
        NetworkClass::SerialLow | NetworkClass::SerialHigh => PathPolicy::ShortestPlane,
        NetworkClass::ParallelHomogeneous => PathPolicy::EcmpHash,
        NetworkClass::ParallelHeterogeneous => PathPolicy::ShortestPlane,
    }
}

/// The paper's *multipath* configuration: K-shortest-path MPTCP with K
/// matched to the plane count (`k_per_plane` subflows per plane; the paper
/// uses 4-way total on 4-plane P-Nets for small-flow FCT, 8 per plane for
/// bulk saturation).
pub fn multipath_policy(class: NetworkClass, n_planes: usize, k_per_plane: usize) -> PathPolicy {
    let k = match class {
        NetworkClass::SerialLow | NetworkClass::SerialHigh => k_per_plane,
        _ => k_per_plane * n_planes,
    };
    PathPolicy::MultipathKsp { k: k.max(1) }
}

/// Wrap a selector into a [`FlowFactory`] for the simulator apps. Each
/// factory call is a new flow (fresh flow id for hashing policies).
pub fn make_factory<'a>(net: &'a Network, mut selector: PathSelector) -> FlowFactory<'a> {
    // Bulk-precompute the all-pairs route table up front (parallel) so the
    // per-flow select calls never hit the lazy Yen path mid-simulation.
    selector.warm();
    let mut flow_id = 0u64;
    Box::new(move |src, dst, size| {
        flow_id += 1;
        selector.select(net, src, dst, flow_id, size)
    })
}

/// Build the network *and* a single-path flow factory for a class in one
/// step (the common case in the packet-level experiments).
pub fn network_and_policy(
    topology: TopologyKind,
    class: NetworkClass,
    n_planes: usize,
    seed: u64,
    policy: PathPolicy,
) -> (PNet, PathPolicy) {
    (build(topology, class, n_planes, seed), policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_lists() {
        assert_eq!(classes_for(TopologyKind::FatTree { k: 4 }).len(), 3);
        assert_eq!(
            classes_for(TopologyKind::Jellyfish {
                n_tors: 8,
                degree: 3,
                hosts_per_tor: 1
            })
            .len(),
            4
        );
    }

    #[test]
    fn multipath_k_scales_with_planes() {
        let k_serial = match multipath_policy(NetworkClass::SerialLow, 4, 8) {
            PathPolicy::MultipathKsp { k } => k,
            _ => unreachable!(),
        };
        let k_par = match multipath_policy(NetworkClass::ParallelHomogeneous, 4, 8) {
            PathPolicy::MultipathKsp { k } => k,
            _ => unreachable!(),
        };
        assert_eq!(k_serial, 8);
        assert_eq!(k_par, 32);
    }

    #[test]
    fn factory_produces_routes() {
        use pnet_topology::HostId;
        let pnet = build(
            TopologyKind::FatTree { k: 4 },
            NetworkClass::SerialLow,
            4,
            0,
        );
        let sel = pnet.selector(PathPolicy::ShortestPlane);
        let mut f = make_factory(&pnet.net, sel);
        let (routes, _) = f(HostId(0), HostId(15), 1000);
        assert_eq!(routes.len(), 1);
        assert!(routes[0].len() >= 2);
    }
}
