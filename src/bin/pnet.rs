//! `pnet` — command-line front end to the P-Net library.
//!
//! Subcommands:
//!
//! * `pnet topology`   — build a network and print its structural summary
//! * `pnet route`      — show the paths a policy picks for a host pair
//! * `pnet throughput` — flow-level capacity of a traffic pattern
//! * `pnet plan`       — planner-service what-if report: admission, subflow
//!   sweep, per-plane headroom, failure what-ifs
//! * `pnet simulate`   — packet-level FCTs of a batch of flows
//! * `pnet components` — Table 1-style component accounting
//!
//! Every subcommand takes `--help`-style discoverable flags (see
//! `usage()`); topologies and seeds are deterministic, so outputs are
//! reproducible.

use pnet::core::{analysis, PNetSpec, PathPolicy, TopologyKind};
use pnet::flowsim::{commodity, throughput};
use pnet::htsim::{
    metrics, run_to_completion, EventMask, FlowSpec, SimConfig, SimTime, Simulator, TelemetryConfig,
};
use pnet::planner::{PlanError, Planner, PlannerConfig};
use pnet::topology::{components, failures, HostId, NetworkClass};
use pnet::workloads::tm;
use pnet_bench::{Args, Table};

fn usage() -> ! {
    eprintln!(
        "pnet — Parallel Dataplane Networks (CoNEXT'22 reproduction)

USAGE:
  pnet <subcommand> [--flag value ...]

SUBCOMMANDS:
  topology     build and summarize a network
               --kind jellyfish|fattree|xpander  --class low|homo|hetero|high
               --planes N --tors N --degree D --hosts-per-tor H --k K --seed S
  route        show selected paths for a host pair
               (topology flags) --src H --dst H --policy ecmp|rr|shortest|ksp|plane-ksp|disjoint
               --kpaths K --size BYTES
  throughput   flow-level capacity of a pattern
               (topology flags) --pattern permutation|all-to-all --kpaths K --eps E
  plan         planner-service what-if report on one fabric snapshot
               (topology flags) --pattern permutation|all-to-all --kpaths K --eps E
               --sweep 1,2,4,8 --what-if-cables N
  simulate     packet-level FCTs of a permutation of flows
               (topology flags) --size BYTES --policy ... --kpaths K
               --trace-out FILE[.jsonl|.csv] --sample-interval DUR (e.g. 100us)
               --trace-events flow,retransmit,timeout,subflow-dead,ecn,link,samples|all
  components   Table 1 component accounting
               --hosts N --planes N

EXAMPLES:
  pnet topology --kind jellyfish --class hetero --planes 4 --tors 32 --degree 5
  pnet route --src 0 --dst 50 --policy shortest --class hetero
  pnet throughput --pattern permutation --kpaths 16 --planes 2
  pnet plan --pattern permutation --planes 4 --what-if-cables 2
  pnet simulate --size 1m --policy plane-ksp --planes 4
  pnet simulate --size 1m --trace-out trace.jsonl --sample-interval 100us"
    );
    std::process::exit(2);
}

fn topology_from(args: &Args) -> (TopologyKind, NetworkClass, usize, u64) {
    let kind = match args.get_str("kind").unwrap_or("jellyfish") {
        "jellyfish" => TopologyKind::Jellyfish {
            n_tors: args.get("tors", 32),
            degree: args.get("degree", 5),
            hosts_per_tor: args.get("hosts-per-tor", 2),
        },
        "fattree" => TopologyKind::FatTree {
            k: args.get("k", 8),
        },
        "xpander" => TopologyKind::Xpander {
            degree: args.get("degree", 5),
            lifts: args.get("lifts", 3),
            hosts_per_tor: args.get("hosts-per-tor", 2),
        },
        other => {
            eprintln!("unknown --kind {other:?}");
            usage()
        }
    };
    let class = match args.get_str("class").unwrap_or("hetero") {
        "low" => NetworkClass::SerialLow,
        "homo" => NetworkClass::ParallelHomogeneous,
        "hetero" => NetworkClass::ParallelHeterogeneous,
        "high" => NetworkClass::SerialHigh,
        other => {
            eprintln!("unknown --class {other:?}");
            usage()
        }
    };
    let class = if matches!(kind, TopologyKind::FatTree { .. })
        && class == NetworkClass::ParallelHeterogeneous
    {
        eprintln!("note: fat trees have no heterogeneous variant; using homogeneous");
        NetworkClass::ParallelHomogeneous
    } else {
        class
    };
    (kind, class, args.get("planes", 4), args.get("seed", 1))
}

fn policy_from(args: &Args, planes: usize) -> PathPolicy {
    let k: usize = args.get("kpaths", 8);
    match args.get_str("policy").unwrap_or("shortest") {
        "ecmp" => PathPolicy::EcmpHash,
        "rr" => PathPolicy::RoundRobin,
        "shortest" => PathPolicy::ShortestPlane,
        "ksp" => PathPolicy::MultipathKsp { k },
        "plane-ksp" => PathPolicy::PlaneKsp {
            per_plane: (k / planes).max(1),
        },
        "disjoint" => PathPolicy::DisjointPerPlane {
            per_plane: (k / planes).max(1),
        },
        "default" => PathPolicy::paper_default(k),
        other => {
            eprintln!("unknown --policy {other:?}");
            usage()
        }
    }
}

fn cmd_topology(args: &Args) {
    let (kind, class, planes, seed) = topology_from(args);
    let pnet = PNetSpec::new(kind, class, planes, seed).build();
    let net = &pnet.net;
    println!("class:    {}", class.label());
    println!("planes:   {}", net.n_planes());
    println!("hosts:    {}", net.n_hosts());
    println!("racks:    {}", net.n_racks());
    println!(
        "switches: {}",
        net.nodes().filter(|(_, n)| n.kind.is_switch()).count()
    );
    println!(
        "links:    {} directed ({} cables)",
        net.n_links(),
        net.n_links() / 2
    );
    let hist = analysis::hop_histogram_best_plane(net);
    println!("mean best-plane switch hops: {:.3}", hist.mean());
    print!("hop histogram:");
    for (h, &c) in hist.histogram.iter().enumerate() {
        if c > 0 {
            print!("  {h}h x {c}");
        }
    }
    println!();
    for p in net.planes() {
        let ok = net.plane_connects_all_hosts(p);
        println!("plane {p}: connected = {ok}");
    }
}

fn host_arg(args: &Args, key: &str, default: u32, n_hosts: usize) -> HostId {
    let id: u32 = args.get(key, default);
    if id as usize >= n_hosts {
        eprintln!(
            "--{key} {id} out of range: the network has {n_hosts} hosts (0..{})",
            n_hosts - 1
        );
        std::process::exit(2);
    }
    HostId(id)
}

fn cmd_route(args: &Args) {
    let (kind, class, planes, seed) = topology_from(args);
    let pnet = PNetSpec::new(kind, class, planes, seed).build();
    let n_hosts = pnet.net.n_hosts();
    let src = host_arg(args, "src", 0, n_hosts);
    let dst = host_arg(args, "dst", (n_hosts - 1) as u32, n_hosts);
    if src == dst {
        eprintln!("--src and --dst must differ (both are {})", src.0);
        std::process::exit(2);
    }
    let size: u64 = args.get_list("size", &[1_000_000])[0];
    let mut selector = pnet.selector(policy_from(args, planes));
    let (routes, cc) = selector.select(&pnet.net, src, dst, args.get("flow", 0u64), size);
    println!(
        "{src} -> {dst} ({} bytes): {} subflow(s), congestion control {cc:?}",
        size,
        routes.len()
    );
    for (i, r) in routes.iter().enumerate() {
        let plane = pnet.net.link(r[0]).plane;
        let hops = r.len() - 1;
        let nodes: Vec<String> = std::iter::once(pnet.net.link(r[0]).src)
            .chain(r.iter().map(|&l| pnet.net.link(l).dst))
            .map(|n| format!("{:?}", pnet.net.node(n).kind))
            .collect();
        println!("  subflow {i}: plane {plane}, {hops} switch hops");
        println!("    {}", nodes.join(" -> "));
    }
}

fn cmd_throughput(args: &Args) {
    let (kind, class, planes, seed) = topology_from(args);
    let pnet = PNetSpec::new(kind, class, planes, seed).build();
    let n = pnet.net.n_hosts();
    let commodities = match args.get_str("pattern").unwrap_or("permutation") {
        "permutation" => commodity::permutation(&tm::random_permutation(n, seed)),
        "all-to-all" => commodity::all_to_all(n),
        other => {
            eprintln!("unknown --pattern {other:?}");
            usage()
        }
    };
    let k: usize = args.get("kpaths", 8);
    let eps: f64 = args.get("eps", 0.1);
    let ecmp = throughput::ecmp_throughput(&pnet.net, &commodities);
    let (ksp, lambda) = throughput::ksp_multipath_throughput(&pnet.net, &commodities, k, eps);
    println!(
        "network: {} ({} hosts, {} planes)",
        class.label(),
        n,
        pnet.net.n_planes()
    );
    println!("flows:   {}", commodities.len());
    println!("ECMP single-path total:   {:.3} Tb/s", ecmp / 1e12);
    println!(
        "KSP-{k} multipath total:   {:.3} Tb/s (min-fair rate {:.2} Gb/s)",
        ksp / 1e12,
        lambda / 1e9
    );
}

/// Exit with the planner's diagnostic when a what-if query fails.
fn run_query<T>(result: Result<T, PlanError>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("planner query failed: {e}");
        std::process::exit(1);
    })
}

/// One-stop what-if report from the planner service: admission of the
/// offered matrix, the subflow fan-out sweep, structural per-plane
/// headroom, and (optionally) ideal throughput with the first N fabric
/// cables failed — all answered against a single pinned generation, with
/// the memo counters showing how much solver work the queries shared.
fn cmd_plan(args: &Args) {
    let (kind, class, planes, seed) = topology_from(args);
    let pnet = PNetSpec::new(kind, class, planes, seed).build();
    let n = pnet.net.n_hosts();
    let commodities = match args.get_str("pattern").unwrap_or("permutation") {
        "permutation" => commodity::permutation(&tm::random_permutation(n, seed)),
        "all-to-all" => commodity::all_to_all(n),
        other => {
            eprintln!("unknown --pattern {other:?}");
            usage()
        }
    };
    let cfg = PlannerConfig {
        k: args.get("kpaths", 8),
        eps: args.get("eps", 0.1),
        ..PlannerConfig::default()
    };
    let planner = Planner::with_config(pnet.net.clone(), cfg);
    let generation = planner.latest();
    println!(
        "network:    {} ({} hosts, {} planes, {} flows offered)",
        class.label(),
        n,
        generation.network().n_planes(),
        commodities.len()
    );
    println!(
        "generation: {} (topology fingerprint {:016x})",
        generation.seq(),
        generation.topology_fingerprint()
    );

    let adm = run_query(planner.admit_at(&generation, &commodities));
    println!(
        "admission:  lambda = {:.4} -> {}  ({:.3} Tb/s delivered at that scale)",
        adm.lambda,
        if adm.admitted {
            "ADMIT (every flow ships full demand)"
        } else {
            "REJECT (the fabric cannot carry the full matrix)"
        },
        adm.total_rate_bps / 1e12
    );

    let sweep: Vec<usize> = args
        .get_list("sweep", &[1, 2, 4, 8])
        .into_iter()
        .map(|k| k as usize)
        .collect();
    let best = run_query(planner.best_k_at(&generation, &commodities, &sweep));
    let swept: Vec<String> = best
        .evaluated
        .iter()
        .map(|(k, l)| format!("K={k}: {l:.4}"))
        .collect();
    println!(
        "subflows:   best K = {} (lambda {:.4})",
        best.k, best.lambda
    );
    println!("            {}", swept.join("   "));

    let mut t = Table::new(
        vec!["Plane", "Live Tb/s", "Total Tb/s", "Down links", "Headroom"],
        false,
    );
    for h in planner.plane_headroom_at(&generation) {
        t.row(vec![
            h.plane.to_string(),
            format!("{:.3}", h.live_capacity_bps as f64 / 1e12),
            format!("{:.3}", h.total_capacity_bps as f64 / 1e12),
            h.failed_links.to_string(),
            format!("{:.1}%", h.headroom * 100.0),
        ]);
    }
    t.print();

    let n_fail: usize = args.get("what-if-cables", 0);
    if n_fail > 0 {
        let cables = failures::fabric_cables(generation.network(), None);
        let chosen = &cables[..n_fail.min(cables.len())];
        let wi = run_query(planner.ideal_throughput_after_at(&generation, chosen, &commodities));
        println!(
            "what-if:    {} fabric cable(s) down -> ideal lambda {:.4} vs {:.4} \
             baseline ({:.1}% retained)",
            chosen.len(),
            wi.degraded_lambda,
            wi.baseline_lambda,
            wi.retained() * 100.0
        );
    }

    let stats = planner.memo_stats();
    println!(
        "memo:       {} cold solve(s), {} cache hit(s), {} entries",
        stats.misses, stats.hits, stats.entries
    );
}

/// Telemetry configuration from `--trace-out`, `--sample-interval`, and
/// `--trace-events`. Tracing is enabled whenever an output file is named:
/// all instantaneous events by default, plus the samplers when an interval
/// is given; `--trace-events` narrows the categories.
fn telemetry_from(args: &Args) -> TelemetryConfig {
    if args.get_str("trace-out").is_none() {
        return TelemetryConfig::default();
    }
    let sample_interval = args.get_str("sample-interval").map(|s| {
        let interval = s.parse::<SimTime>().unwrap_or_else(|e| {
            eprintln!("--sample-interval: {e}");
            usage()
        });
        if interval == SimTime::ZERO {
            eprintln!(
                "--sample-interval must be positive: a zero period would re-arm \
                 the sampler at the same timestamp forever"
            );
            usage()
        }
        interval
    });
    let events = match args.get_str("trace-events") {
        Some(names) => EventMask::from_names(names).unwrap_or_else(|e| {
            eprintln!("--trace-events: {e}");
            usage()
        }),
        None if sample_interval.is_some() => EventMask::ALL,
        None => EventMask::TRACE,
    };
    TelemetryConfig {
        events,
        sample_interval,
    }
}

fn cmd_simulate(args: &Args) {
    let (kind, class, planes, seed) = topology_from(args);
    let pnet = PNetSpec::new(kind, class, planes, seed).build();
    let n = pnet.net.n_hosts();
    let size: u64 = args.get_list("size", &[1_000_000])[0];
    let mut selector = pnet.selector(policy_from(args, planes));
    let cfg = SimConfig {
        telemetry: telemetry_from(args),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&pnet.net, cfg);
    for (i, (a, b)) in tm::permutation_pairs(n, seed).into_iter().enumerate() {
        let (routes, cc) = selector.select(
            &pnet.net,
            HostId(a as u32),
            HostId(b as u32),
            i as u64,
            size,
        );
        sim.start_flow(FlowSpec {
            src: HostId(a as u32),
            dst: HostId(b as u32),
            size_bytes: size,
            routes,
            cc,
            owner_tag: i as u64,
        });
    }
    run_to_completion(&mut sim);
    let fcts = metrics::fcts_us(&sim.records);
    let s = metrics::Summary::of(&fcts);
    println!(
        "{} flows x {} bytes on {} ({} planes)",
        fcts.len(),
        size,
        class.label(),
        pnet.net.n_planes()
    );
    println!(
        "FCT us: min {:.1}  median {:.1}  mean {:.1}  p90 {:.1}  p99 {:.1}  max {:.1}",
        s.min, s.median, s.mean, s.p90, s.p99, s.max
    );
    println!(
        "drops: {} congestion + {} link-down  retransmits: {}  events: {}",
        sim.dropped_packets,
        sim.dropped_link_down_packets,
        sim.records.iter().map(|r| r.retransmits).sum::<u64>(),
        sim.events_dispatched()
    );
    if let Some(path) = args.get_str("trace-out") {
        let tl = sim
            .telemetry()
            .expect("telemetry is enabled whenever --trace-out is given");
        let body = if path.ends_with(".csv") {
            tl.to_csv()
        } else {
            tl.to_jsonl()
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("trace: {} records -> {path}", tl.len());
    }
}

fn cmd_components(args: &Args) {
    let hosts: usize = args.get("hosts", 8192);
    let planes: usize = args.get("planes", 8);
    let chip = components::ChipSpec::table1();
    let mut t = Table::new(
        vec!["Architecture", "Tiers", "Hops", "Chips", "Boxes", "Links"],
        false,
    );
    for row in [
        components::serial_scale_out(hosts, chip),
        components::serial_chassis(hosts, chip),
        components::parallel_pnet(hosts, planes, chip),
    ] {
        t.row(vec![
            row.architecture.clone(),
            row.tiers.to_string(),
            row.hops.to_string(),
            row.chips.to_string(),
            row.boxes.to_string(),
            row.links.to_string(),
        ]);
    }
    t.print();
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0].starts_with('-') {
        usage();
    }
    let sub = raw.remove(0);
    let args = Args::from_args(raw);
    match sub.as_str() {
        "topology" => cmd_topology(&args),
        "route" => cmd_route(&args),
        "throughput" => cmd_throughput(&args),
        "plan" => cmd_plan(&args),
        "simulate" => cmd_simulate(&args),
        "components" => cmd_components(&args),
        _ => usage(),
    }
}
