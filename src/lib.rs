//! # pnet — Parallel Dataplane Networks
//!
//! A Rust reproduction of *"Scaling beyond packet switch limits with
//! multiple dataplanes"* (Guo, Mellette, Snoeren, Porter — CoNEXT 2022).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`topology`] — fat trees, chassis component models, Jellyfish and
//!   Xpander expanders, multi-plane assembly, failure injection;
//! * [`routing`] — BFS/ECMP/Yen-KSP path computation with plane-aware
//!   route tables;
//! * [`flowsim`] — flow-level throughput solvers (max concurrent flow,
//!   max-min waterfilling) replacing the paper's LP solver;
//! * [`htsim`] — a packet-level discrete-event simulator with TCP and
//!   MPTCP (the paper's htsim methodology);
//! * [`workloads`] — synthetic traffic matrices, published-trace flow-size
//!   CDFs, and the Hadoop sort job;
//! * [`core`] — the paper's contribution: the P-Net host stack with
//!   plane/path selection policies and pseudo interfaces;
//! * [`planner`] — throughput-planner-as-a-service: concurrent what-if
//!   queries (admission, failure what-ifs, subflow sweeps) over
//!   epoch-snapshotted fabric generations with memoized solves.
//!
//! See `examples/` for runnable walkthroughs and `crates/bench/src/bin/`
//! for the per-figure experiment harness.
//!
//! ## Quickstart
//!
//! ```
//! use pnet::core::{PNetSpec, PathPolicy, TopologyKind};
//! use pnet::topology::{HostId, NetworkClass};
//!
//! // A 4-plane heterogeneous P-Net over Jellyfish planes.
//! let pnet = PNetSpec::new(
//!     TopologyKind::Jellyfish { n_tors: 16, degree: 4, hosts_per_tor: 2 },
//!     NetworkClass::ParallelHeterogeneous,
//!     4,
//!     7,
//! )
//! .build();
//!
//! // The host stack picks plane(s) and path(s) per flow.
//! let mut selector = pnet.selector(PathPolicy::paper_default(32));
//! let (routes, _cc) = selector.select(&pnet.net, HostId(0), HostId(31), 1, 1_500);
//! assert_eq!(routes.len(), 1); // small RPC: single path, lowest-hop plane
//! ```

pub use pnet_core as core;
pub use pnet_flowsim as flowsim;
pub use pnet_htsim as htsim;
pub use pnet_planner as planner;
pub use pnet_routing as routing;
pub use pnet_topology as topology;
pub use pnet_workloads as workloads;
