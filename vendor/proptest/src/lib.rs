//! Offline stand-in for `proptest`.
//!
//! Supports the subset used by this workspace's property tests: the
//! `proptest!` macro with `name in strategy` and `name: Type` parameters,
//! range strategies over primitive numeric types, `any::<T>()`,
//! `ProptestConfig::with_cases`, and the `prop_assume!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!` macros.
//!
//! Cases are sampled from a deterministic PRNG seeded from the test's module
//! path and name, so failures are reproducible run-to-run. There is no
//! shrinking: a failing case panics with the sampled parameter values.

use std::ops::{Range, RangeInclusive};

/// Runner configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; resample without counting.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Deterministic case-sampling PRNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identifier (FNV-1a over the name).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value-generation strategy.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
    )*};
}
impl_strategy_float!(f32, f64);

/// Full-domain sampling for `name: Type` parameters and `any::<T>()`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy wrapper around [`Arbitrary`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)*)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Binds one `proptest!` parameter per step: `name in strategy` samples the
/// strategy, `name: Type` samples the full domain. Also records the sampled
/// value's Debug form for failure reports.
#[macro_export]
#[doc(hidden)]
macro_rules! __pt_bind {
    ($rng:ident, $dbg:ident;) => {};
    ($rng:ident, $dbg:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&($strat), &mut $rng);
        $dbg.push(format!("{} = {:?}", stringify!($name), &$name));
        $crate::__pt_bind!($rng, $dbg; $($rest)*);
    };
    ($rng:ident, $dbg:ident; $name:ident in $strat:expr) => {
        $crate::__pt_bind!($rng, $dbg; $name in $strat,);
    };
    ($rng:ident, $dbg:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&$crate::any::<$ty>(), &mut $rng);
        $dbg.push(format!("{} = {:?}", stringify!($name), &$name));
        $crate::__pt_bind!($rng, $dbg; $($rest)*);
    };
    ($rng:ident, $dbg:ident; $name:ident : $ty:ty) => {
        $crate::__pt_bind!($rng, $dbg; $name : $ty,);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __pt_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = cfg.cases.saturating_mul(100).max(1000);
            while accepted < cfg.cases && attempts < max_attempts {
                attempts += 1;
                let mut case_dbg: Vec<String> = Vec::new();
                let result: ::std::result::Result<(), $crate::TestCaseError> = {
                    $crate::__pt_bind!(rng, case_dbg; $($params)*);
                    (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                };
                match result {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed after {} passing case(s): {}\n  with {}",
                            accepted,
                            msg,
                            case_dbg.join(", ")
                        );
                    }
                }
            }
            assert!(
                accepted > 0,
                "proptest: no case satisfied prop_assume! within {max_attempts} attempts"
            );
        }
        $crate::__pt_fns!{($cfg) $($rest)*}
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__pt_fns!{($cfg) $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::__pt_fns!{($crate::ProptestConfig::default()) $($rest)*}
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(a in 3usize..10, b in 0u64..5, f in 0.5f64..1.0, c: u32) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((0.5..1.0).contains(&f));
            let _ = c;
        }

        #[test]
        fn assume_filters(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
