//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! `bench_function`, `benchmark_group`, `Bencher::iter`, the
//! `criterion_group!`/`criterion_main!` macros and `black_box` — with a
//! simple median-of-samples timer instead of criterion's full statistical
//! machinery. Good enough to spot order-of-magnitude regressions offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timing loop handed to bench closures.
pub struct Bencher {
    samples: usize,
    last: Option<Duration>,
}

impl Bencher {
    /// Run `f` repeatedly and record the median per-iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up (untimed).
        black_box(f());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed());
        }
        times.sort_unstable();
        self.last = Some(times[times.len() / 2]);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Samples per benchmark (criterion-compatible builder).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        let name = name.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last: None,
        };
        f(&mut b);
        match b.last {
            Some(t) => println!("bench: {name:<60} {t:>12.2?}/iter"),
            None => println!("bench: {name:<60} (no measurement)"),
        }
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        println!("group: {}", name.into());
        BenchmarkGroup { c: self }
    }
}

/// A named group; benches inside share the parent configuration.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        f: F,
    ) -> &mut Self {
        self.c.bench_function(format!("  {}", name.into()), f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size = n.max(2);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut ran = 0u32;
        Criterion::default()
            .sample_size(3)
            .bench_function("counts", |b| b.iter(|| ran += 1));
        assert!(ran >= 4, "warmup + samples should run: {ran}");
    }

    #[test]
    fn group_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        let mut hits = 0u32;
        g.bench_function("inner", |b| b.iter(|| hits += 1));
        g.finish();
        assert!(hits > 0);
    }
}
