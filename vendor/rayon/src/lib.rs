//! Offline stand-in for `rayon`, built on `std::thread::scope`.
//!
//! The build container has no registry access, so the workspace vendors the
//! small slice of the rayon API its hot paths use: `par_iter()` on slices,
//! `into_par_iter()` on `Vec<T>` and `Range<usize>`, plus `map` and an
//! order-preserving `collect`. Work is split into one contiguous chunk per
//! thread and results are concatenated in input order, so a parallel
//! `map().collect()` is element-for-element identical to the serial
//! equivalent — the determinism contract every caller in this workspace
//! relies on.
//!
//! Thread count: `RAYON_NUM_THREADS` if set (a positive integer), otherwise
//! `std::thread::available_parallelism()`. With one thread every operation
//! degenerates to the plain serial loop (no spawn overhead).

use std::ops::Range;

/// Threads used by parallel operations (`RAYON_NUM_THREADS` override, else
/// the machine's available parallelism).
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Split `n` items into at most `threads` contiguous chunks of near-equal
/// size. Returns index ranges covering `0..n` in order.
fn chunk_ranges(n: usize, threads: usize) -> Vec<Range<usize>> {
    let threads = threads.max(1).min(n.max(1));
    let base = n / threads;
    let extra = n % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Map `f` over `0..n` on the available threads, collecting results in index
/// order. The core primitive behind every parallel iterator here.
pub fn par_map_index<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunk_ranges(n, threads)
            .into_iter()
            .map(|range| s.spawn(move || range.map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("rayon stub worker panicked"));
        }
        out
    })
}

/// Update each element of `items` in place via `f(index, &mut item)` on the
/// available threads, splitting into one contiguous chunk per thread. Each
/// index is touched exactly once, so for per-index-pure `f` the outcome is
/// identical to the serial loop.
pub fn par_update_index<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = current_num_threads();
    let n = items.len();
    if threads <= 1 || n <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let f = &f;
    std::thread::scope(|s| {
        let mut rest = items;
        let mut start = 0;
        let mut handles = Vec::new();
        for range in chunk_ranges(n, threads) {
            let (chunk, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let base = start;
            start += chunk.len();
            handles.push(s.spawn(move || {
                for (i, item) in chunk.iter_mut().enumerate() {
                    f(base + i, item);
                }
            }));
        }
        for h in handles {
            h.join().expect("rayon stub worker panicked");
        }
    });
}

pub mod iter {
    use super::{chunk_ranges, current_num_threads, par_map_index};
    use std::ops::Range;

    /// `.par_iter()` on slices (and anything derefing to a slice).
    pub trait IntoParallelRefIterator<'a> {
        type Item: 'a;
        fn par_iter(&'a self) -> ParSlice<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParSlice<'a, T> {
            ParSlice { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParSlice<'a, T> {
            ParSlice { items: self }
        }
    }

    /// `.into_par_iter()` on owned containers and index ranges.
    pub trait IntoParallelIterator {
        type Iter;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = ParVec<T>;
        fn into_par_iter(self) -> ParVec<T> {
            ParVec { items: self }
        }
    }

    impl IntoParallelIterator for Range<usize> {
        type Iter = ParRange;
        fn into_par_iter(self) -> ParRange {
            ParRange { range: self }
        }
    }

    /// Borrowing parallel iterator over a slice.
    pub struct ParSlice<'a, T> {
        items: &'a [T],
    }

    impl<'a, T: Sync> ParSlice<'a, T> {
        pub fn map<R, F>(self, f: F) -> ParSliceMap<'a, T, F>
        where
            R: Send,
            F: Fn(&'a T) -> R + Sync,
        {
            ParSliceMap {
                items: self.items,
                f,
            }
        }

        pub fn enumerate(self) -> ParSliceEnum<'a, T> {
            ParSliceEnum { items: self.items }
        }
    }

    pub struct ParSliceMap<'a, T, F> {
        items: &'a [T],
        f: F,
    }

    impl<'a, T: Sync, F> ParSliceMap<'a, T, F> {
        pub fn collect<R, C>(self) -> C
        where
            R: Send,
            F: Fn(&'a T) -> R + Sync,
            C: From<Vec<R>>,
        {
            let items = self.items;
            let f = &self.f;
            C::from(par_map_index(items.len(), |i| f(&items[i])))
        }
    }

    /// `.par_iter().enumerate().map(...).collect()` support.
    pub struct ParSliceEnum<'a, T> {
        items: &'a [T],
    }

    impl<'a, T: Sync> ParSliceEnum<'a, T> {
        pub fn map<R, F>(self, f: F) -> ParSliceEnumMap<'a, T, F>
        where
            R: Send,
            F: Fn((usize, &'a T)) -> R + Sync,
        {
            ParSliceEnumMap {
                items: self.items,
                f,
            }
        }
    }

    pub struct ParSliceEnumMap<'a, T, F> {
        items: &'a [T],
        f: F,
    }

    impl<'a, T: Sync, F> ParSliceEnumMap<'a, T, F> {
        pub fn collect<R, C>(self) -> C
        where
            R: Send,
            F: Fn((usize, &'a T)) -> R + Sync,
            C: From<Vec<R>>,
        {
            let items = self.items;
            let f = &self.f;
            C::from(par_map_index(items.len(), |i| f((i, &items[i]))))
        }
    }

    /// Owning parallel iterator over a `Vec`.
    pub struct ParVec<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParVec<T> {
        pub fn map<R, F>(self, f: F) -> ParVecMap<T, F>
        where
            R: Send,
            F: Fn(T) -> R + Sync,
        {
            ParVecMap {
                items: self.items,
                f,
            }
        }
    }

    pub struct ParVecMap<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T: Send, F> ParVecMap<T, F> {
        pub fn collect<R, C>(self) -> C
        where
            R: Send,
            F: Fn(T) -> R + Sync,
            C: From<Vec<R>>,
        {
            let threads = current_num_threads();
            let n = self.items.len();
            if threads <= 1 || n <= 1 {
                return C::from(self.items.into_iter().map(self.f).collect());
            }
            // Pre-split the owned items into per-thread chunks, preserving
            // order, then map each chunk on its own scoped thread.
            let ranges = chunk_ranges(n, threads);
            let mut chunks: Vec<Vec<T>> = Vec::with_capacity(ranges.len());
            let mut it = self.items.into_iter();
            for r in &ranges {
                chunks.push(it.by_ref().take(r.len()).collect());
            }
            let f = &self.f;
            C::from(std::thread::scope(|s| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
                    .collect();
                let mut out = Vec::with_capacity(n);
                for h in handles {
                    out.extend(h.join().expect("rayon stub worker panicked"));
                }
                out
            }))
        }
    }

    /// Parallel iterator over `Range<usize>`.
    pub struct ParRange {
        range: Range<usize>,
    }

    impl ParRange {
        pub fn map<R, F>(self, f: F) -> ParRangeMap<F>
        where
            R: Send,
            F: Fn(usize) -> R + Sync,
        {
            ParRangeMap {
                range: self.range,
                f,
            }
        }
    }

    pub struct ParRangeMap<F> {
        range: Range<usize>,
        f: F,
    }

    impl<F> ParRangeMap<F> {
        pub fn collect<R, C>(self) -> C
        where
            R: Send,
            F: Fn(usize) -> R + Sync,
            C: From<Vec<R>>,
        {
            let start = self.range.start;
            let n = self.range.end.saturating_sub(start);
            let f = &self.f;
            C::from(par_map_index(n, |i| f(start + i)))
        }
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn chunks_cover_in_order() {
        for n in [0usize, 1, 5, 16, 17] {
            for t in [1usize, 2, 4, 8] {
                let rs = chunk_ranges(n, t);
                let flat: Vec<usize> = rs.into_iter().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} t={t}");
            }
        }
    }

    #[test]
    fn slice_map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn owned_map_collect_preserves_order() {
        let v: Vec<String> = (0..257).map(|i| format!("s{i}")).collect();
        let got: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        let want: Vec<usize> = (0..257).map(|i| format!("s{i}").len()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn range_map_collect_preserves_order() {
        let got: Vec<usize> = (3..300).into_par_iter().map(|i| i * i).collect();
        assert_eq!(got, (3..300).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_update_index_matches_serial() {
        let mut a: Vec<u64> = (0..997).collect();
        let mut b = a.clone();
        let f = |i: usize, x: &mut u64| *x = x.wrapping_mul(31) ^ i as u64;
        for (i, x) in a.iter_mut().enumerate() {
            f(i, x);
        }
        par_update_index(&mut b, f);
        assert_eq!(a, b);
    }

    #[test]
    fn enumerate_indices_match() {
        let v = vec!['a', 'b', 'c', 'd'];
        let got: Vec<(usize, char)> = v.par_iter().enumerate().map(|(i, &c)| (i, c)).collect();
        assert_eq!(got, vec![(0, 'a'), (1, 'b'), (2, 'c'), (3, 'd')]);
    }
}
