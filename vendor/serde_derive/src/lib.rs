//! No-op `Serialize`/`Deserialize` derives for the vendored serde stand-in.
//!
//! The workspace only *annotates* types for future serialization; nothing in
//! the tree calls a serializer, so the derives expand to nothing. The
//! `serde` helper attribute is registered so `#[serde(...)]` field/container
//! attributes would be swallowed rather than rejected.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
