//! Offline stand-in for `rand_distr`: the [`Distribution`] trait and the
//! exponential distribution, the only pieces this workspace uses.

use rand::{Rng, RngExt};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpError;

impl core::fmt::Display for ExpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "exponential rate must be positive and finite")
    }
}
impl std::error::Error for ExpError {}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy)]
pub struct Exp<F> {
    lambda: F,
}

impl Exp<f64> {
    pub fn new(lambda: f64) -> Result<Self, ExpError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(ExpError)
        }
    }
}

impl Distribution<f64> for Exp<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF on u in (0, 1]: -ln(u) / lambda.
        let u = 1.0 - rng.random::<f64>();
        -u.ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invalid_rate_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Exp::new(f64::INFINITY).is_err());
    }

    #[test]
    fn mean_approximates_inverse_rate() {
        let d = Exp::new(0.5).unwrap(); // mean 2.0
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = total / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }
}
