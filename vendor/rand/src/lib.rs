//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! subset of the `rand 0.10` API it actually uses: [`rngs::StdRng`] (a
//! deterministic xoshiro256++), [`SeedableRng::seed_from_u64`], the
//! [`Rng`]/[`RngExt`] traits with `random`/`random_range`, and
//! [`seq::SliceRandom`]. Determinism is the only contract the workspace
//! relies on — streams are *not* bit-compatible with upstream rand, but they
//! are stable across runs and platforms, which is what every seeded
//! experiment here needs.

/// A source of random 64-bit words.
pub trait Rng {
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values samplable uniformly from an RNG ("standard" distribution).
pub trait StandardSample: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable uniformly (the argument of `random_range`).
pub trait SampleRange {
    type Output;
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience methods over any [`Rng`] (rand 0.10 naming).
pub trait RngExt: Rng {
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    #[inline]
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_in(self)
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (SplitMix64-expanded seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngExt};

    /// Shuffling and choosing on slices (Fisher–Yates).
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.random_range(5u32..=5);
            assert_eq!(w, 5);
            let f = r.random_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
