//! Offline stand-in for `serde`.
//!
//! The workspace annotates topology types with `Serialize`/`Deserialize`
//! derives but never invokes a serializer (there is no serde_json or similar
//! in-tree). This crate provides the marker traits and re-exports no-op
//! derive macros so those annotations compile without registry access.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
