//! Planner service contract tests: snapshot consistency across publishes,
//! memo-hit ≡ cold-solve byte identity, batch amortization, delta-repair
//! fingerprint cross-checks, and concurrent queries racing the writer.

use pnet::flowsim::mcf::McfError;
use pnet::flowsim::{commodity, Commodity};
use pnet::planner::{
    solution_fingerprint, topology_fingerprint, PlanError, Planner, PlannerConfig,
};
use pnet::routing::Parallelism;
use pnet::topology::{
    assemble_homogeneous, failures, FatTree, LinkDelta, LinkId, LinkProfile, Network, PlaneId,
};
use std::sync::Arc;

fn net() -> Network {
    assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default())
}

fn cfg() -> PlannerConfig {
    PlannerConfig {
        k: 4,
        eps: 0.1,
        parallelism: Parallelism::Serial,
        track_repair: false,
    }
}

fn tm() -> Vec<Commodity> {
    commodity::all_to_all(8)
}

fn down(cable: LinkId) -> LinkDelta {
    LinkDelta {
        down: vec![cable],
        up: Vec::new(),
    }
}

fn up(cable: LinkId) -> LinkDelta {
    LinkDelta {
        down: Vec::new(),
        up: vec![cable],
    }
}

/// Satellite 5 (first half): a query pinned to generation N returns
/// byte-identical results before and after a publish lands N+1 —
/// fingerprint-asserted on the full solution, and cross-checked against an
/// independent cold planner over the same topology.
#[test]
fn pinned_generation_is_byte_identical_across_publish() {
    let planner = Planner::with_config(net(), cfg());
    let gen0 = planner.latest();
    let fp0 = gen0.topology_fingerprint();
    let tm = tm();
    let before = planner.solve_ksp_at(&gen0, &tm, 4).expect("solvable");
    let before_fp = solution_fingerprint(&before);

    // Publish N+1 mid-flight: fail one fabric cable.
    let cable = failures::fabric_cables(gen0.network(), None)[0];
    let stats = planner.publish_delta(&down(cable)).expect("publish");
    assert_eq!(stats.seq, 1);
    assert_ne!(stats.topology_fp, fp0, "churn must move the fingerprint");
    assert_eq!(planner.latest().seq(), 1);
    assert_eq!(
        planner
            .generation(1)
            .expect("published")
            .topology_fingerprint(),
        stats.topology_fp
    );

    // The pinned generation is untouched, and the pinned query re-answers
    // with the identical bytes.
    assert_eq!(gen0.topology_fingerprint(), fp0);
    assert_eq!(topology_fingerprint(gen0.network()), fp0);
    let after = planner.solve_ksp_at(&gen0, &tm, 4).expect("solvable");
    assert_eq!(solution_fingerprint(&after), before_fp);

    // An independent cold planner over the same topology lands on the
    // same bytes — the fingerprint is a real identity, not an artifact of
    // the shared cache.
    let cold = Planner::with_config(net(), cfg());
    let cold_sol = cold.solve_ksp_at(&cold.latest(), &tm, 4).expect("solvable");
    assert_eq!(solution_fingerprint(&cold_sol), before_fp);
}

/// Satellite 5 (second half): a memo hit is bitwise identical to the cold
/// solve it replaces, with the hit/miss counters proving the second query
/// was actually served from cache.
#[test]
fn memo_hit_is_bitwise_identical_to_cold_solve() {
    let planner = Planner::with_config(net(), cfg());
    let gen0 = planner.latest();
    let tm = tm();
    let cold = planner.solve_ksp_at(&gen0, &tm, 4).expect("solvable");
    let s1 = planner.memo_stats();
    assert_eq!((s1.hits, s1.misses), (0, 1));
    let warm = planner.solve_ksp_at(&gen0, &tm, 4).expect("solvable");
    let s2 = planner.memo_stats();
    assert_eq!((s2.hits, s2.misses), (1, 1));
    assert_eq!(solution_fingerprint(&cold), solution_fingerprint(&warm));
    // `admit` consumes the same memo entry (same K, same ε).
    let adm = planner.admit_at(&gen0, &tm).expect("solvable");
    assert_eq!(adm.lambda.to_bits(), cold.lambda.to_bits());
    assert_eq!(planner.memo_stats().hits, 2);
}

/// `track_repair` keeps a master router repaired in place by `apply_delta`
/// and asserts its table fingerprint equals a fresh rebuild on every
/// publish — the PR 7 equivalence discipline as a service invariant (the
/// assert lives inside `publish_delta`; this test drives it through a
/// down/up cycle).
#[test]
fn track_repair_crosschecks_delta_equivalence() {
    let config = PlannerConfig {
        track_repair: true,
        ..cfg()
    };
    let planner = Planner::with_config(net(), config);
    let gen0_fp = planner.latest().topology_fingerprint();
    let cable = failures::fabric_cables(planner.latest().network(), None)[0];
    let failed = planner.publish_delta(&down(cable)).expect("publish");
    let repair = failed.repair.expect("track_repair records delta stats");
    assert!(!repair.full_rebuild, "cable churn must take the delta path");
    let restored = planner.publish_delta(&up(cable)).expect("publish");
    assert!(restored.repair.is_some());
    // Down + up round-trips the topology fingerprint to the seed's.
    assert_eq!(restored.topology_fp, gen0_fp);
}

/// Batch admission pins one generation and solves each *distinct* matrix
/// exactly once; duplicates are answered from the batch-local dedupe.
#[test]
fn admit_batch_amortizes_duplicate_matrices() {
    let planner = Planner::with_config(net(), cfg());
    let a = tm();
    let perm: Vec<usize> = (0..16).map(|i| (i + 8) % 16).collect();
    let b = commodity::permutation(&perm);
    let batch = vec![a.clone(), b.clone(), a.clone(), b, a];
    let answers = planner.admit_batch(&batch);
    assert_eq!(answers.len(), 5);
    let stats = planner.memo_stats();
    assert_eq!(stats.misses, 2, "two distinct matrices -> two GK solves");
    let first = answers[0].as_ref().expect("solvable");
    let third = answers[2].as_ref().expect("solvable");
    assert_eq!(first.lambda.to_bits(), third.lambda.to_bits());
}

/// Plane headroom is pure link arithmetic: healthy planes report 1.0, a
/// failed cable debits exactly its own plane (both directions).
#[test]
fn plane_headroom_tracks_failures() {
    let planner = Planner::with_config(net(), cfg());
    for h in planner.plane_headroom() {
        assert!((h.headroom - 1.0).abs() < 1e-12);
        assert_eq!(h.failed_links, 0);
        assert_eq!(h.live_capacity_bps, h.total_capacity_bps);
    }
    let cable = failures::fabric_cables(planner.latest().network(), Some(PlaneId(1)))[0];
    planner.publish_delta(&down(cable)).expect("publish");
    let headroom = planner.plane_headroom();
    assert_eq!(headroom[1].failed_links, 2, "both directions of the cable");
    assert!(headroom[1].headroom < 1.0);
    assert!(
        (headroom[0].headroom - 1.0).abs() < 1e-12,
        "the other plane is untouched"
    );
}

/// What-if failures run against a private clone: ideal throughput drops
/// (or holds), and the pinned generation's fingerprint never moves.
#[test]
fn what_if_failures_leave_snapshot_untouched() {
    let planner = Planner::with_config(net(), cfg());
    let gen0 = planner.latest();
    let tm = tm();
    let cables = failures::fabric_cables(gen0.network(), None);
    let wi = planner
        .ideal_throughput_after_at(&gen0, &cables[..2], &tm)
        .expect("solvable");
    assert!(wi.baseline_lambda > 0.0);
    assert!(wi.degraded_lambda <= wi.baseline_lambda * 1.01);
    assert!(wi.retained() > 0.0 && wi.retained() <= 1.01);
    assert_eq!(
        topology_fingerprint(gen0.network()),
        gen0.topology_fingerprint(),
        "what-if must not mutate the snapshot"
    );
}

/// `best_k` sweeps the candidates, returns the max-λ winner, and leaves
/// every sub-result memoized (a re-sweep is all cache hits).
#[test]
fn best_k_sweep_is_memoized() {
    let planner = Planner::with_config(net(), cfg());
    let perm: Vec<usize> = (0..16).map(|i| (i + 8) % 16).collect();
    let tm = commodity::permutation(&perm);
    let best = planner.best_k(&tm, &[1, 4, 8]).expect("solvable");
    assert_eq!(best.evaluated.len(), 3);
    for &(_, lambda) in &best.evaluated {
        assert!(best.lambda >= lambda, "winner must dominate the sweep");
    }
    let before = planner.memo_stats();
    planner.best_k(&tm, &[1, 4, 8]).expect("solvable");
    let after = planner.memo_stats();
    assert_eq!(after.misses, before.misses, "re-sweep must not re-solve");
    assert_eq!(after.hits, before.hits + 3);
}

/// Degenerate queries come back as typed errors, not panics — including
/// the bad-ε validation from the mcf bugfix surfacing through the service.
#[test]
fn degenerate_queries_are_typed_errors() {
    let planner = Planner::with_config(net(), cfg());
    let gen0 = planner.latest();
    assert!(matches!(
        planner.generation(99),
        Err(PlanError::UnknownGeneration { seq: 99 })
    ));
    assert!(matches!(
        planner.best_k(&tm(), &[]),
        Err(PlanError::NoCandidates)
    ));
    assert!(matches!(
        planner.admit_at(&gen0, &[]),
        Err(PlanError::Solver(McfError::NoCommodities))
    ));
    let bogus = LinkId(u32::MAX);
    assert!(matches!(
        planner.ideal_throughput_after_at(&gen0, &[bogus], &tm()),
        Err(PlanError::UnknownLink { .. })
    ));
    assert!(matches!(
        planner.publish_delta(&down(bogus)),
        Err(PlanError::UnknownLink { .. })
    ));
    let bad = Planner::with_config(net(), PlannerConfig { eps: 1.5, ..cfg() });
    assert!(matches!(
        bad.admit(&tm()),
        Err(PlanError::Solver(McfError::InvalidEps { .. }))
    ));
}

/// Concurrent readers race the writer: queries pinned to generation 0 stay
/// bitwise stable while four publishes land, and queries against whatever
/// `latest()` returns always succeed. Scoped threads keep the test
/// deterministic in outcome (every interleaving must pass).
#[test]
fn concurrent_queries_survive_publishes() {
    let planner = Arc::new(Planner::with_config(net(), cfg()));
    let gen0 = planner.latest();
    let tm = tm();
    let reference = solution_fingerprint(&planner.solve_ksp_at(&gen0, &tm, 4).expect("solvable"));
    let cable = failures::fabric_cables(gen0.network(), None)[0];
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let planner = Arc::clone(&planner);
            let tm = tm.clone();
            scope.spawn(move || {
                for _ in 0..8 {
                    let pinned = planner.generation(0).expect("seed generation");
                    let sol = planner.solve_ksp_at(&pinned, &tm, 4).expect("solvable");
                    assert_eq!(solution_fingerprint(&sol), reference);
                    let latest = planner.latest();
                    let adm = planner.admit_at(&latest, &tm).expect("solvable");
                    assert!(adm.lambda > 0.0);
                }
            });
        }
        for _ in 0..2 {
            planner.publish_delta(&down(cable)).expect("publish");
            planner.publish_delta(&up(cable)).expect("publish");
        }
    });
    assert_eq!(planner.n_generations(), 5);
    let pinned = planner.generation(0).expect("seed generation");
    let fin = planner.solve_ksp_at(&pinned, &tm, 4).expect("solvable");
    assert_eq!(solution_fingerprint(&fin), reference);
}
