//! End-to-end test of DARD-style adaptive plane selection: small flows that
//! learn from completion feedback steer around a congested plane, beating
//! oblivious hash placement.

use pnet::core::adaptive::{ideal_fct_us, AdaptiveBalancer};
use pnet::core::{PNetSpec, PathPolicy, TopologyKind};
use pnet::htsim::{run, Driver, FlowRecord, FlowSpec, SimConfig, SimTime, Simulator};
use pnet::routing::{host_route, Path, RouteAlgo, Router};
use pnet::topology::{HostId, NetworkClass, PlaneId};

const SMALL_BYTES: u64 = 150_000;
const N_SMALL: u64 = 60;

/// Placement strategies under test.
enum Placement {
    Hash,
    Adaptive(AdaptiveBalancer),
}

struct SmallFlowDriver<'a> {
    net: &'a pnet::topology::Network,
    router: Router,
    placement: Placement,
    launched: u64,
    /// (plane used, fct us) per completed small flow.
    pub completed: Vec<(PlaneId, f64)>,
    /// tag -> plane of in-flight small flows.
    plane_of: std::collections::HashMap<u64, PlaneId>,
    src: HostId,
    dst: HostId,
}

impl SmallFlowDriver<'_> {
    fn launch(&mut self, sim: &mut Simulator) {
        let tag = self.launched;
        self.launched += 1;
        let usable: Vec<PlaneId> = self.net.planes().collect();
        let plane = match &mut self.placement {
            Placement::Hash => {
                let h = pnet::routing::flow_hash(self.src, self.dst, tag);
                pnet::routing::hash_plane(self.net.n_planes(), h)
            }
            Placement::Adaptive(b) => b.choose(&usable),
        };
        let (ra, rb) = (
            self.net.rack_of_host(self.src),
            self.net.rack_of_host(self.dst),
        );
        let path = if ra == rb {
            Path::intra_rack(plane)
        } else {
            self.router.paths_in_plane(plane, ra, rb)[0].clone()
        };
        let route = host_route(self.net, self.src, self.dst, &path).unwrap();
        self.plane_of.insert(tag, plane);
        sim.start_flow(FlowSpec {
            src: self.src,
            dst: self.dst,
            size_bytes: SMALL_BYTES,
            routes: vec![route],
            cc: pnet::htsim::CcAlgo::Reno,
            owner_tag: tag,
        });
    }
}

impl Driver for SmallFlowDriver<'_> {
    fn on_app_timer(&mut self, sim: &mut Simulator, _app: u32, _tag: u64) {
        if self.launched < N_SMALL {
            self.launch(sim);
            let next = sim.now + SimTime::from_us(60);
            sim.schedule_app(next, 0, 0);
        }
    }

    fn on_flow_complete(&mut self, _sim: &mut Simulator, rec: &FlowRecord) {
        if rec.owner_tag == u64::MAX {
            return; // background bulk
        }
        let plane = self.plane_of[&rec.owner_tag];
        let fct = rec.fct().as_us_f64();
        self.completed.push((plane, fct));
        if let Placement::Adaptive(b) = &mut self.placement {
            b.report(plane, fct / ideal_fct_us(SMALL_BYTES, 100_000_000_000));
        }
    }
}

fn run_scenario(placement: Placement) -> Vec<(PlaneId, f64)> {
    let pnet = PNetSpec::new(
        TopologyKind::Jellyfish {
            n_tors: 8,
            degree: 3,
            hosts_per_tor: 2,
        },
        NetworkClass::ParallelHomogeneous,
        4,
        9,
    )
    .build();
    let mut sim = Simulator::new(&pnet.net, SimConfig::default());

    // Congest plane 0: several long bulk flows crossing it, sharing links
    // with the small-flow path.
    let mut bulk_sel = pnet.selector(PathPolicy::Pinned {
        planes: vec![0],
        inner: Box::new(PathPolicy::EcmpHash),
    });
    for (i, (a, b)) in [(2u32, 13u32), (3, 12), (4, 15), (5, 14), (6, 11), (7, 10)]
        .iter()
        .enumerate()
    {
        let (routes, cc) = bulk_sel.select(&pnet.net, HostId(*a), HostId(*b), i as u64, 50_000_000);
        sim.start_flow(FlowSpec {
            src: HostId(*a),
            dst: HostId(*b),
            size_bytes: 50_000_000,
            routes,
            cc,
            owner_tag: u64::MAX,
        });
    }

    let mut driver = SmallFlowDriver {
        net: &pnet.net,
        router: Router::new(&pnet.net, RouteAlgo::Ksp { k: 2 }),
        placement,
        launched: 0,
        completed: Vec::new(),
        plane_of: Default::default(),
        src: HostId(0),
        dst: HostId(15),
    };
    sim.schedule_app(SimTime::from_us(10), 0, 0);
    run(&mut sim, &mut driver, Some(SimTime::from_ms(50)));
    driver.completed
}

#[test]
fn adaptive_placement_learns_to_avoid_congested_plane() {
    let hash = run_scenario(Placement::Hash);
    let adaptive = run_scenario(Placement::Adaptive(AdaptiveBalancer::new(4, 0.4, 10)));
    assert!(hash.len() as u64 >= N_SMALL - 5);
    assert!(adaptive.len() as u64 >= N_SMALL - 5);

    // Steady state: the second half of the flows. Compare the 90th
    // percentile FCT rather than the mean — both placements deterministically
    // suffer one ~10 ms outlier (a plane-0 flow queued behind the 50 MB bulk
    // transfers), and that single flow dominates any mean, masking the
    // placement signal entirely. The p90 captures what adaptive placement
    // actually improves: the latency of the typical steady-state flow.
    let tail_p90 = |v: &[(PlaneId, f64)]| {
        let mut fcts: Vec<f64> = v[v.len() / 2..].iter().map(|&(_, f)| f).collect();
        fcts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        fcts[(fcts.len() * 9) / 10 - 1]
    };
    let hash_p90 = tail_p90(&hash);
    let adaptive_p90 = tail_p90(&adaptive);
    assert!(
        adaptive_p90 < hash_p90 * 0.5,
        "adaptive p90 {adaptive_p90:.1}us not clearly better than hash p90 {hash_p90:.1}us"
    );

    // The adaptive tail should almost never use the congested plane 0.
    let tail = &adaptive[adaptive.len() / 2..];
    let on_plane0 = tail.iter().filter(|(p, _)| *p == PlaneId(0)).count();
    assert!(
        on_plane0 * 5 <= tail.len(),
        "{on_plane0}/{} steady-state flows still on the congested plane",
        tail.len()
    );
}
