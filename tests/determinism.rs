//! Whole-stack determinism: identical seeds must yield bit-identical
//! results across topology construction, routing, flow-level solving, and
//! packet-level simulation. This is what makes every experiment in the
//! harness reproducible.

use pnet::core::{PNetSpec, PathPolicy, TopologyKind};
use pnet::flowsim::{commodity, throughput};
use pnet::htsim::{run_to_completion, FlowSpec, SimConfig, Simulator};
use pnet::routing::{RouteAlgo, Router};
use pnet::topology::{HostId, NetworkClass, RackId};
use pnet::workloads::tm;

fn spec() -> PNetSpec {
    PNetSpec::new(
        TopologyKind::Jellyfish {
            n_tors: 16,
            degree: 4,
            hosts_per_tor: 2,
        },
        NetworkClass::ParallelHeterogeneous,
        4,
        33,
    )
}

#[test]
fn topology_construction_is_deterministic() {
    let a = spec().build().net;
    let b = spec().build().net;
    assert_eq!(a.n_links(), b.n_links());
    for (la, lb) in a.links().zip(b.links()) {
        assert_eq!(la.1.src, lb.1.src);
        assert_eq!(la.1.dst, lb.1.dst);
        assert_eq!(la.1.plane, lb.1.plane);
    }
}

#[test]
fn routing_is_deterministic() {
    let net = spec().build().net;
    let r1 = Router::new(&net, RouteAlgo::Ksp { k: 8 });
    let r2 = Router::new(&net, RouteAlgo::Ksp { k: 8 });
    for a in 0..8u32 {
        for b in 8..16u32 {
            assert_eq!(
                r1.k_best_across_planes(RackId(a), RackId(b), 8),
                r2.k_best_across_planes(RackId(a), RackId(b), 8)
            );
        }
    }
}

#[test]
fn flow_solver_is_deterministic() {
    let net = spec().build().net;
    let c = commodity::permutation(&tm::random_permutation(32, 4));
    let (t1, l1) = throughput::ksp_multipath_throughput(&net, &c, 8, 0.1);
    let (t2, l2) = throughput::ksp_multipath_throughput(&net, &c, 8, 0.1);
    assert_eq!(t1.to_bits(), t2.to_bits());
    assert_eq!(l1.to_bits(), l2.to_bits());
}

#[test]
fn packet_simulation_is_deterministic() {
    let run_once = || -> Vec<u64> {
        let pnet = spec().build();
        let mut selector = pnet.selector(PathPolicy::paper_default(16));
        let mut sim = Simulator::new(&pnet.net, SimConfig::default());
        for (i, (a, b)) in tm::permutation_pairs(32, 6).into_iter().enumerate() {
            let (routes, cc) = selector.select(
                &pnet.net,
                HostId(a as u32),
                HostId(b as u32),
                i as u64,
                500_000,
            );
            sim.start_flow(FlowSpec {
                src: HostId(a as u32),
                dst: HostId(b as u32),
                size_bytes: 500_000,
                routes,
                cc,
                owner_tag: i as u64,
            });
        }
        run_to_completion(&mut sim);
        let mut fcts: Vec<(u64, u64)> = sim
            .records
            .iter()
            .map(|r| (r.owner_tag, r.fct().as_ps()))
            .collect();
        fcts.sort_unstable();
        fcts.into_iter().map(|(_, f)| f).collect()
    };
    assert_eq!(run_once(), run_once());
}

/// Fixed-seed 2-plane jellyfish used by the serial-vs-parallel checks.
fn two_plane_spec() -> PNetSpec {
    PNetSpec::new(
        TopologyKind::Jellyfish {
            n_tors: 16,
            degree: 4,
            hosts_per_tor: 2,
        },
        NetworkClass::ParallelHomogeneous,
        2,
        7,
    )
}

#[test]
fn serial_and_parallel_route_tables_are_identical() {
    use pnet::routing::Parallelism;
    use pnet::topology::PlaneId;
    let net = two_plane_spec().build().net;
    let serial = Router::with_parallelism(&net, RouteAlgo::Ksp { k: 8 }, Parallelism::Serial);
    serial.precompute_all_pairs_with(Parallelism::Serial);
    let parallel = Router::with_parallelism(&net, RouteAlgo::Ksp { k: 8 }, Parallelism::Rayon);
    parallel.precompute_all_pairs_with(Parallelism::Rayon);
    assert_eq!(serial.cached_entries(), parallel.cached_entries());
    for a in 0..16u32 {
        for b in 0..16u32 {
            if a == b {
                continue;
            }
            for p in 0..2u16 {
                assert_eq!(
                    *serial.paths_in_plane(PlaneId(p), RackId(a), RackId(b)),
                    *parallel.paths_in_plane(PlaneId(p), RackId(a), RackId(b)),
                    "route table diverged at plane {p}, pair ({a},{b})"
                );
            }
            assert_eq!(
                serial.k_best_across_planes(RackId(a), RackId(b), 8),
                parallel.k_best_across_planes(RackId(a), RackId(b), 8)
            );
        }
    }
}

#[test]
fn serial_and_parallel_mcf_solutions_are_bit_identical() {
    use pnet::flowsim::mcf::{self, McfOptions};
    use pnet::routing::Parallelism;
    let net = two_plane_spec().build().net;
    let c = commodity::permutation(&tm::random_permutation(32, 11));
    let solve = |par: Parallelism| {
        let router = Router::with_parallelism(&net, RouteAlgo::Ksp { k: 16 }, par);
        let mode = mcf::ksp_mode_with(&net, &router, &c, 8, par);
        mcf::solve_with_options(
            &net,
            &c,
            &mode,
            0.1,
            McfOptions {
                parallelism: par,
                ..Default::default()
            },
        )
    };
    let a = solve(Parallelism::Serial);
    let b = solve(Parallelism::Rayon);
    assert_eq!(a.lambda.to_bits(), b.lambda.to_bits());
    assert_eq!(a.phases, b.phases);
    assert_eq!(a.rates.len(), b.rates.len());
    for (ra, rb) in a.rates.iter().zip(&b.rates) {
        assert_eq!(ra.to_bits(), rb.to_bits());
    }
    for (fa, fb) in a.link_flow.iter().zip(&b.link_flow) {
        assert_eq!(fa.to_bits(), fb.to_bits());
    }
}

#[test]
fn serial_and_parallel_anypath_mcf_agree() {
    use pnet::flowsim::mcf::{self, McfOptions, PathMode};
    use pnet::routing::Parallelism;
    let net = two_plane_spec().build().net;
    let c = commodity::permutation(&tm::random_permutation(32, 13));
    let solve = |par: Parallelism| {
        mcf::solve_with_options(
            &net,
            &c,
            &PathMode::AnyPath,
            0.1,
            McfOptions {
                parallelism: par,
                ..Default::default()
            },
        )
    };
    let a = solve(Parallelism::Serial);
    let b = solve(Parallelism::Rayon);
    assert_eq!(a.lambda.to_bits(), b.lambda.to_bits());
    assert_eq!(a.phases, b.phases);
    for (ra, rb) in a.rates.iter().zip(&b.rates) {
        assert_eq!(ra.to_bits(), rb.to_bits());
    }
}

#[test]
fn different_seeds_give_different_heterogeneous_planes() {
    let a = PNetSpec { seed: 1, ..spec() }.build().net;
    let b = PNetSpec { seed: 2, ..spec() }.build().net;
    let fabric = |n: &pnet::topology::Network| -> Vec<(u32, u32)> {
        n.links()
            .filter(|(_, l)| n.node(l.src).kind.is_switch() && n.node(l.dst).kind.is_switch())
            .map(|(_, l)| (l.src.0, l.dst.0))
            .collect()
    };
    assert_ne!(fabric(&a), fabric(&b));
}

#[test]
fn telemetry_trace_is_deterministic_and_inert() {
    // Two telemetry-on runs must export byte-identical JSONL, and turning
    // telemetry on must not move a single flow-completion timestamp
    // relative to a telemetry-off run of the same workload.
    use pnet::htsim::{SimTime, TelemetryConfig};
    let run_once = |telemetry: TelemetryConfig| -> (Vec<u64>, String) {
        let pnet = spec().build();
        let mut selector = pnet.selector(PathPolicy::paper_default(16));
        let cfg = SimConfig {
            telemetry,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&pnet.net, cfg);
        for (i, (a, b)) in tm::permutation_pairs(32, 6).into_iter().enumerate() {
            let (routes, cc) = selector.select(
                &pnet.net,
                HostId(a as u32),
                HostId(b as u32),
                i as u64,
                500_000,
            );
            sim.start_flow(FlowSpec {
                src: HostId(a as u32),
                dst: HostId(b as u32),
                size_bytes: 500_000,
                routes,
                cc,
                owner_tag: i as u64,
            });
        }
        run_to_completion(&mut sim);
        let mut fcts: Vec<(u64, u64)> = sim
            .records
            .iter()
            .map(|r| (r.owner_tag, r.fct().as_ps()))
            .collect();
        fcts.sort_unstable();
        let jsonl = sim.telemetry().map(|t| t.to_jsonl()).unwrap_or_default();
        (fcts.into_iter().map(|(_, f)| f).collect(), jsonl)
    };
    let on = TelemetryConfig::all(SimTime::from_us(20));
    let (fcts_a, jsonl_a) = run_once(on);
    let (fcts_b, jsonl_b) = run_once(on);
    assert_eq!(fcts_a, fcts_b, "telemetry-on runs diverged");
    assert_eq!(jsonl_a, jsonl_b, "trace export not byte-identical");
    assert!(!jsonl_a.is_empty());
    let (fcts_off, _) = run_once(TelemetryConfig::default());
    assert_eq!(fcts_a, fcts_off, "telemetry perturbed the simulation");
}
