//! Telemetry-layer contract tests: tracing must never perturb the
//! simulation (telemetry-on results are identical to telemetry-off), the
//! exported JSONL/CSV must be byte-identical across runs, and category
//! filters must admit exactly the events they name.

use pnet::htsim::{
    run_to_completion, CcAlgo, EventMask, FlowSpec, SimConfig, SimTime, Simulator, TelemetryConfig,
    TraceRecord,
};
use pnet::routing::{host_route, RouteAlgo, Router};
use pnet::topology::{
    assemble_homogeneous, FatTree, HostId, LinkId, LinkProfile, Network, PlaneId,
};

fn net(planes: usize) -> Network {
    assemble_homogeneous(
        &FatTree::three_tier(4),
        planes,
        &LinkProfile::paper_default(),
    )
}

fn route(net: &Network, src: HostId, dst: HostId, plane: u16) -> Vec<LinkId> {
    let router = Router::new(net, RouteAlgo::Ksp { k: 2 });
    let p = router.paths_in_plane(PlaneId(plane), net.rack_of_host(src), net.rack_of_host(dst))[0]
        .clone();
    host_route(net, src, dst, &p).unwrap()
}

/// A fixed multi-flow workload: 6 flows fanning into two destination racks
/// across both planes, enough traffic to queue, mark, and (with small
/// buffers) drop.
fn workload(n: &Network, sim: &mut Simulator) {
    for i in 0..6u32 {
        let (src, dst) = (HostId(i), HostId(15 - (i % 2)));
        sim.start_flow(FlowSpec {
            src,
            dst,
            size_bytes: 300_000,
            routes: vec![route(n, src, dst, (i % 2) as u16)],
            cc: CcAlgo::Reno,
            owner_tag: u64::from(i),
        });
    }
}

fn fct_vector(sim: &Simulator) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = sim
        .records
        .iter()
        .map(|r| (r.owner_tag, r.fct().as_ps()))
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn telemetry_does_not_perturb_the_simulation() {
    // The whole point of the observer design: switching every trace
    // category and the sampler on must not move a single timestamp.
    let n = net(2);
    let run_with = |telemetry: TelemetryConfig| -> (Vec<(u64, u64)>, u64) {
        let cfg = SimConfig {
            telemetry,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&n, cfg);
        workload(&n, &mut sim);
        run_to_completion(&mut sim);
        (fct_vector(&sim), sim.dropped_packets)
    };
    let off = run_with(TelemetryConfig::default());
    let on = run_with(TelemetryConfig::all(SimTime::from_us(10)));
    assert_eq!(off, on, "telemetry-on run diverged from telemetry-off");
}

#[test]
fn telemetry_export_is_byte_identical_across_runs() {
    let n = net(2);
    let run_once = || -> (String, String) {
        let cfg = SimConfig {
            telemetry: TelemetryConfig::all(SimTime::from_us(10)),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&n, cfg);
        workload(&n, &mut sim);
        run_to_completion(&mut sim);
        let tl = sim.telemetry().expect("telemetry was enabled");
        assert!(!tl.is_empty());
        (tl.to_jsonl(), tl.to_csv())
    };
    let (jsonl_a, csv_a) = run_once();
    let (jsonl_b, csv_b) = run_once();
    assert_eq!(jsonl_a, jsonl_b, "JSONL export not byte-identical");
    assert_eq!(csv_a, csv_b, "CSV export not byte-identical");
    // Sanity on shape: JSONL is one object per line, CSV leads with the
    // legend comments and the fixed header.
    assert!(jsonl_a
        .lines()
        .all(|l| l.starts_with('{') && l.ends_with('}')));
    let first_data = csv_a
        .lines()
        .find(|l| !l.starts_with('#'))
        .expect("CSV must have a header line");
    assert_eq!(first_data, "t_ps,event,conn,subflow,link,plane,v0,v1,v2,v3");
}

#[test]
fn category_filter_admits_only_named_events() {
    let n = net(2);
    let cfg = SimConfig {
        telemetry: TelemetryConfig {
            events: EventMask::FLOW_START | EventMask::FLOW_FINISH,
            sample_interval: None,
        },
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&n, cfg);
    workload(&n, &mut sim);
    run_to_completion(&mut sim);
    let tl = sim.telemetry().expect("telemetry was enabled");
    // Exactly one start and one finish per flow, nothing else.
    assert_eq!(tl.len(), 12, "6 flows -> 6 starts + 6 finishes");
    for rec in tl.records() {
        assert!(
            matches!(
                rec,
                TraceRecord::FlowStart { .. } | TraceRecord::FlowFinish { .. }
            ),
            "unexpected record slipped past the filter: {rec:?}"
        );
    }
    let finishes = tl
        .records()
        .iter()
        .filter(|r| matches!(r, TraceRecord::FlowFinish { .. }))
        .count();
    assert_eq!(finishes, 6);
}

#[test]
fn link_state_changes_are_traced() {
    let n = net(2);
    let cfg = SimConfig {
        telemetry: TelemetryConfig {
            events: EventMask::LINK_STATE,
            sample_interval: None,
        },
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&n, cfg);
    sim.fail_link(LinkId(3));
    sim.restore_link(LinkId(3));
    let tl = sim.telemetry().expect("telemetry was enabled");
    let recs = tl.records();
    assert_eq!(recs.len(), 2);
    assert!(matches!(recs[0], TraceRecord::LinkDown { link: 3, .. }));
    assert!(matches!(recs[1], TraceRecord::LinkUp { link: 3, .. }));
}

#[test]
fn ecn_marks_are_traced_under_dctcp_incast() {
    let n = net(1);
    let cfg = SimConfig {
        ecn_threshold_packets: Some(5),
        telemetry: TelemetryConfig {
            events: EventMask::ECN_MARK,
            sample_interval: None,
        },
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&n, cfg);
    for i in 0..8u32 {
        let src = HostId(i);
        let dst = HostId(15);
        sim.start_flow(FlowSpec {
            src,
            dst,
            size_bytes: 400_000,
            routes: vec![route(&n, src, dst, 0)],
            cc: CcAlgo::Dctcp,
            owner_tag: u64::from(i),
        });
    }
    run_to_completion(&mut sim);
    let tl = sim.telemetry().expect("telemetry was enabled");
    let marks = tl
        .records()
        .iter()
        .filter(|r| matches!(r, TraceRecord::EcnMark { .. }))
        .count();
    assert!(marks > 0, "incast past K=5 must mark packets");
    // Marks carry the buffered depth that tripped the threshold.
    for rec in tl.records() {
        if let TraceRecord::EcnMark { buffered_bytes, .. } = rec {
            assert!(*buffered_bytes >= 5 * 1500, "mark below threshold");
        }
    }
}

/// Regression: a zero sampler interval used to schedule a self-rearming
/// `TelemetrySample` at its own timestamp — an infinite same-time loop under
/// batched dispatch, so `run_to_completion` never returned. The config layer
/// now normalizes `Some(0)` to "samplers off"; this test hangs pre-fix.
#[test]
fn zero_sample_interval_disables_samplers_instead_of_livelocking() {
    let n = net(2);
    let cfg = SimConfig {
        telemetry: TelemetryConfig {
            events: EventMask::ALL,
            sample_interval: Some(SimTime::ZERO),
        },
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&n, cfg);
    workload(&n, &mut sim);
    run_to_completion(&mut sim);
    assert_eq!(sim.records.len(), 6, "all flows must complete");
    let tl = sim.telemetry().expect("telemetry was enabled");
    assert!(
        !tl.records().iter().any(|r| matches!(
            r,
            TraceRecord::QueueSample { .. }
                | TraceRecord::PlaneSample { .. }
                | TraceRecord::SubflowSample { .. }
        )),
        "a zero interval must disable the samplers entirely"
    );
}

#[test]
fn samplers_emit_queue_plane_and_subflow_records() {
    let n = net(2);
    let cfg = SimConfig {
        telemetry: TelemetryConfig {
            events: EventMask::SAMPLES,
            sample_interval: Some(SimTime::from_us(5)),
        },
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&n, cfg);
    workload(&n, &mut sim);
    run_to_completion(&mut sim);
    let tl = sim.telemetry().expect("telemetry was enabled");
    let (mut queues, mut planes, mut subflows) = (0usize, 0usize, 0usize);
    let mut last_t = 0u64;
    for rec in tl.records() {
        let t = rec.time().as_ps();
        assert!(t >= last_t, "sampler records out of time order");
        last_t = t;
        match rec {
            TraceRecord::QueueSample { depth_pkts, .. } => {
                queues += 1;
                assert!(*depth_pkts > 0, "idle queues are not sampled");
            }
            TraceRecord::PlaneSample { utilization, .. } => {
                planes += 1;
                assert!(
                    utilization.is_finite() && *utilization >= 0.0,
                    "utilization out of range: {utilization}"
                );
            }
            TraceRecord::SubflowSample { cwnd, .. } => {
                subflows += 1;
                assert!(*cwnd > 0.0, "live subflow must have a window");
            }
            other => panic!("non-sample record slipped past the filter: {other:?}"),
        }
    }
    assert!(queues > 0, "no queue samples recorded");
    assert!(planes > 0, "no plane samples recorded");
    assert!(subflows > 0, "no subflow samples recorded");
    // Once the run drains, the sampler must have shut itself down rather
    // than ticking forever: the final sample time is bounded by the last
    // flow finish plus one interval.
    let last_finish = sim
        .records
        .iter()
        .map(|r| r.finish.as_ps())
        .max()
        .expect("flows finished");
    assert!(
        last_t <= last_finish + SimTime::from_us(5).as_ps(),
        "sampler kept running after the network drained"
    );
}
