//! Plane-failure resilience at the transport and host-stack level: the
//! paper's "end hosts can quickly detect individual dataplane failures via
//! link status and avoid using the broken dataplane(s), allowing graceful
//! performance degradation" (section 3.4).

use pnet::core::{HostStack, PNetSpec, PathPolicy, TopologyKind};
use pnet::htsim::{run, FlowSpec, NullDriver, SimConfig, SimTime, Simulator};
use pnet::topology::{failures, HostId, NetworkClass, PlaneId};

fn pnet4() -> pnet::core::PNet {
    PNetSpec::new(
        TopologyKind::Jellyfish {
            n_tors: 8,
            degree: 3,
            hosts_per_tor: 2,
        },
        NetworkClass::ParallelHomogeneous,
        4,
        3,
    )
    .build()
}

#[test]
fn mptcp_survives_a_plane_failure_mid_flight() {
    let pnet = pnet4();
    let mut selector = pnet.selector(PathPolicy::PlaneKsp { per_plane: 1 });
    let (routes, cc) = selector.select(&pnet.net, HostId(0), HostId(15), 1, 40_000_000);
    assert_eq!(routes.len(), 4, "one subflow per plane expected");
    let plane0_uplink = routes
        .iter()
        .map(|r| r[0])
        .find(|&l| pnet.net.link(l).plane == PlaneId(0))
        .expect("no plane-0 subflow");

    let mut cfg = SimConfig::default();
    cfg.tcp.min_rto = SimTime::from_ms(1); // fast failure detection
    let mut sim = Simulator::new(&pnet.net, cfg);
    let id = sim.start_flow(FlowSpec {
        src: HostId(0),
        dst: HostId(15),
        size_bytes: 40_000_000,
        routes,
        cc,
        owner_tag: 0,
    });

    // Let the transfer ramp, then kill plane 0's uplink for good.
    run(&mut sim, &mut NullDriver, Some(SimTime::from_us(200)));
    assert!(sim.conn(id).finish.is_none());
    sim.fail_link(plane0_uplink);
    run(&mut sim, &mut NullDriver, None);

    let conn = sim.conn(id);
    assert!(
        conn.finish.is_some(),
        "MPTCP flow never completed after losing one plane"
    );
    // Exactly one subflow died; the rest carried the re-injected data.
    let dead: Vec<usize> = conn
        .subflows
        .iter()
        .enumerate()
        .filter(|(_, s)| s.dead)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(dead.len(), 1, "expected one dead subflow, got {dead:?}");
    assert_eq!(conn.acked, conn.size_packets);
    // 40 MB over the 3 surviving 100G uplinks ~ 1.1 ms + failure detection;
    // it must not have taken a pathological number of timeouts.
    let fct = conn.finish.unwrap().as_ms_f64();
    assert!(fct < 50.0, "fct {fct} ms too slow for a 3-plane recovery");

    // The blackholed packets are failure loss, not congestion loss: they
    // land in the dedicated link-down counters.
    assert!(
        sim.dropped_link_down_packets > 0,
        "dark uplink should have discarded in-flight packets"
    );
    // Both directions of the cable went dark: data dies at the uplink
    // queue, returning ACKs at its reverse. Together they are every
    // link-down discard in the run.
    let fwd = sim.queue_stats(plane0_uplink);
    let rev = sim.queue_stats(plane0_uplink.reverse());
    assert_eq!(
        fwd.dropped_link_down + rev.dropped_link_down,
        sim.dropped_link_down_packets
    );
    // Slow-start overshoot before the failure may drop-tail a few packets;
    // those stay in the congestion counters, not the failure counters.
    assert!(fwd.dropped + rev.dropped <= sim.dropped_packets);
}

#[test]
fn host_stack_masks_failed_plane_for_new_flows() {
    let pnet = pnet4();
    let mut net = pnet.net;
    // Fail host 0's plane-2 uplink in the *topology* (link status) and
    // refresh the host stack + selector, as the paper's host would.
    let uplink = net.host_uplink(HostId(0), PlaneId(2)).unwrap();
    failures::fail_cable(&mut net, uplink);
    let mut stack = HostStack::new(&net, HostId(0));
    assert!(!stack.plane_live(PlaneId(2)));
    assert_eq!(stack.refresh(&net), vec![]); // constructed post-failure

    let mut selector = pnet::core::PathSelector::new(
        pnet::routing::Router::new(&net, pnet::routing::RouteAlgo::Ksp { k: 8 }),
        PathPolicy::EcmpHash,
    );
    for flow in 0..64 {
        let (routes, _) = selector.select(&net, HostId(0), HostId(14), flow, 1_000);
        assert_ne!(
            net.link(routes[0][0]).plane,
            PlaneId(2),
            "flow {flow} placed on the dead plane"
        );
    }

    // Multipath selection also avoids the dead plane.
    let mut mp = pnet::core::PathSelector::new(
        pnet::routing::Router::new(&net, pnet::routing::RouteAlgo::Ksp { k: 8 }),
        PathPolicy::PlaneKsp { per_plane: 1 },
    );
    let (routes, _) = mp.select(&net, HostId(0), HostId(14), 0, 1 << 30);
    assert_eq!(
        routes.len(),
        3,
        "dead plane must drop out of the subflow set"
    );
    assert!(routes.iter().all(|r| net.link(r[0]).plane != PlaneId(2)));
}

#[test]
fn single_path_flows_on_other_planes_unaffected_by_plane_death() {
    let pnet = pnet4();
    let mut cfg = SimConfig::default();
    cfg.tcp.min_rto = SimTime::from_ms(1);
    let mut sim = Simulator::new(&pnet.net, cfg);
    let mut selector = pnet.selector(PathPolicy::RoundRobin);
    // Four flows, one per plane (round robin).
    let mut ids = Vec::new();
    for i in 0..4u64 {
        let (routes, cc) = selector.select(&pnet.net, HostId(0), HostId(15), i, 2_000_000);
        ids.push((
            sim.start_flow(FlowSpec {
                src: HostId(0),
                dst: HostId(15),
                size_bytes: 2_000_000,
                routes: routes.clone(),
                cc,
                owner_tag: i,
            }),
            pnet.net.link(routes[0][0]).plane,
        ));
    }
    // Kill plane 1 immediately.
    let up1 = pnet.net.host_uplink(HostId(0), PlaneId(1)).unwrap();
    sim.fail_link(up1);
    run(&mut sim, &mut NullDriver, Some(SimTime::from_ms(20)));
    for (id, plane) in ids {
        let done = sim.conn(id).finish.is_some();
        if plane == PlaneId(1) {
            assert!(!done, "flow on the dead plane cannot finish");
        } else {
            assert!(done, "flow on live plane {plane} should have finished");
        }
    }
}
