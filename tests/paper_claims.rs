//! End-to-end integration tests asserting the paper's qualitative claims,
//! each a miniature of one evaluation result (see DESIGN.md's experiment
//! index). These run the full stack: topology -> routing -> flow-level /
//! packet-level simulation.

use pnet::core::{analysis, PNetSpec, PathPolicy, TopologyKind};
use pnet::flowsim::{commodity, throughput};
use pnet::htsim::apps::{RpcDriver, RpcSlot};
use pnet::htsim::{metrics, run, run_to_completion, FlowSpec, SimConfig, Simulator};
use pnet::topology::{
    components, failures, parallel, FatTree, HostId, Jellyfish, LinkProfile, NetworkClass,
};
use pnet::workloads::tm;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

#[test]
fn table1_exact_numbers() {
    let rows = components::table1();
    let as_tuple = |r: &components::ComponentCount| (r.tiers, r.hops, r.chips, r.boxes, r.links);
    assert_eq!(as_tuple(&rows[0]), (4, 7, 3584, 3584, 24_576));
    assert_eq!(as_tuple(&rows[1]), (2, 7, 3584, 192, 8_192));
    assert_eq!(as_tuple(&rows[2]), (2, 3, 1536, 192, 8_192));
}

// ---------------------------------------------------------------------
// Figure 6: ECMP fails on sparse traffic; multipath recovers capacity
// ---------------------------------------------------------------------

#[test]
fn ecmp_all_to_all_scales_but_permutation_does_not() {
    let base = LinkProfile::paper_default();
    let ft = FatTree::three_tier(4);
    let serial = pnet::topology::assemble_homogeneous(&ft, 1, &base);
    let par4 = pnet::topology::assemble_homogeneous(&ft, 4, &base);

    let a2a = commodity::all_to_all(16);
    let t1 = throughput::ecmp_throughput(&serial, &a2a);
    let t4 = throughput::ecmp_throughput(&par4, &a2a);
    assert!(
        t4 / t1 > 2.5,
        "all-to-all under ECMP should scale well: got {}",
        t4 / t1
    );

    let perm = commodity::permutation(&tm::random_permutation(16, 3));
    let p1 = throughput::ecmp_throughput(&serial, &perm);
    let p4 = throughput::ecmp_throughput(&par4, &perm);
    assert!(
        p4 / p1 < 2.2,
        "permutation under ECMP should NOT extract 4x: got {}",
        p4 / p1
    );
}

#[test]
fn multipath_saturation_k_grows_with_planes() {
    // The N x subflows rule: the K needed to reach 95% of the N-plane
    // asymptote grows ~proportionally to N.
    let base = LinkProfile::paper_default();
    let ft = FatTree::three_tier(4);
    let perm = commodity::permutation(&tm::random_permutation(16, 5));
    let saturation_k = |n_planes: usize| -> usize {
        let net = pnet::topology::assemble_homogeneous(&ft, n_planes, &base);
        let (asymptote, _) = throughput::ksp_multipath_throughput(&net, &perm, 32, 0.1);
        for k in [1usize, 2, 4, 8, 16, 32] {
            let (t, _) = throughput::ksp_multipath_throughput(&net, &perm, k, 0.1);
            if t >= 0.95 * asymptote {
                return k;
            }
        }
        64
    };
    let k1 = saturation_k(1);
    let k2 = saturation_k(2);
    assert!(
        k2 >= 2 * k1,
        "2-plane saturation K ({k2}) should be ~2x serial's ({k1})"
    );
}

// ---------------------------------------------------------------------
// Figure 7: heterogeneous core capacity exceeds serial high-bandwidth
// ---------------------------------------------------------------------

#[test]
fn heterogeneous_core_capacity_beats_serial_high() {
    let base = LinkProfile::paper_default();
    let proto = Jellyfish::new(32, 6, 1, 0);
    let commodities = commodity::all_to_all(32);
    let high = parallel::jellyfish_network(NetworkClass::SerialHigh, proto, 4, 9, &base);
    let het = parallel::jellyfish_network(NetworkClass::ParallelHeterogeneous, proto, 4, 9, &base);
    let (t_high, _) = throughput::ideal_core_throughput(&high, &commodities, 0.1);
    let (t_het, _) = throughput::ideal_core_throughput(&het, &commodities, 0.1);
    assert!(
        t_het > 1.1 * t_high,
        "hetero core capacity {t_het:.3e} should exceed serial-high {t_high:.3e}"
    );
}

// ---------------------------------------------------------------------
// Figures 10/14: heterogeneous hop advantage & failure resilience
// ---------------------------------------------------------------------

#[test]
fn heterogeneous_has_fewer_hops_and_degrades_gracefully() {
    let base = LinkProfile::paper_default();
    let proto = Jellyfish::new(40, 5, 1, 0);
    let build = |class| parallel::jellyfish_network(class, proto, 4, 21, &base);

    let serial = build(NetworkClass::SerialLow);
    let homo = build(NetworkClass::ParallelHomogeneous);
    let hetero = build(NetworkClass::ParallelHeterogeneous);

    // No failures: hetero < serial; homo == serial.
    let s0 = analysis::mean_hops_single_plane(&serial);
    let h0 = analysis::mean_hops_best_plane(&homo);
    let x0 = analysis::mean_hops_best_plane(&hetero);
    assert!(x0 < s0 - 0.1, "hetero {x0} not below serial {s0}");
    assert!((h0 - s0).abs() < 1e-9);

    // 40% failures: serial degrades much more than homogeneous.
    let mut serial_f = build(NetworkClass::SerialLow);
    let mut homo_f = build(NetworkClass::ParallelHomogeneous);
    failures::fail_random_fraction(&mut serial_f, 0.4, 7);
    failures::fail_random_fraction(&mut homo_f, 0.4, 7);
    let s_deg = analysis::mean_hops_single_plane(&serial_f) / s0;
    let h_deg = analysis::mean_hops_best_plane(&homo_f) / h0;
    assert!(
        s_deg > h_deg + 0.05,
        "serial degradation {s_deg} should exceed homogeneous {h_deg}"
    );
}

// ---------------------------------------------------------------------
// Figure 10 (packet level): hetero RPCs complete faster
// ---------------------------------------------------------------------

#[test]
fn hetero_rpc_latency_beats_serial() {
    let topology = TopologyKind::Jellyfish {
        n_tors: 16,
        degree: 4,
        hosts_per_tor: 2,
    };
    let median_rpc = |class: NetworkClass| -> f64 {
        let pnet = PNetSpec::new(topology, class, 4, 11).build();
        let n_hosts = pnet.net.n_hosts() as u32;
        let policy = match class {
            NetworkClass::ParallelHeterogeneous => PathPolicy::ShortestPlane,
            _ => PathPolicy::EcmpHash,
        };
        let mut selector = pnet.selector(policy);
        let net = &pnet.net;
        let mut flow = 0u64;
        let factory = Box::new(move |a, b, s| {
            flow += 1;
            selector.select(net, a, b, flow, s)
        });
        let mut sim = Simulator::new(&pnet.net, SimConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        let slots: Vec<RpcSlot> = (0..n_hosts)
            .map(|h| {
                let mut r = StdRng::seed_from_u64(rng.random());
                RpcSlot {
                    client: HostId(h),
                    next_server: Box::new(move || loop {
                        let s = r.random_range(0..n_hosts);
                        if s != h {
                            return HostId(s);
                        }
                    }),
                }
            })
            .collect();
        let mut driver = RpcDriver::start(&mut sim, slots, factory, 1500, 1500, 20);
        run(&mut sim, &mut driver, None);
        metrics::percentile(&driver.round_times_us, 50.0)
    };
    let serial = median_rpc(NetworkClass::SerialLow);
    let hetero = median_rpc(NetworkClass::ParallelHeterogeneous);
    assert!(
        hetero < serial * 0.95,
        "hetero median {hetero}us not below serial {serial}us"
    );
}

// ---------------------------------------------------------------------
// MPTCP: multipath bulk transfer approaches the combined plane capacity
// ---------------------------------------------------------------------

#[test]
fn mptcp_bulk_transfer_uses_parallel_capacity() {
    let topology = TopologyKind::Jellyfish {
        n_tors: 8,
        degree: 3,
        hosts_per_tor: 2,
    };
    let pnet = PNetSpec::new(topology, NetworkClass::ParallelHomogeneous, 4, 2).build();
    let mut selector = pnet.selector(PathPolicy::PlaneKsp { per_plane: 1 });
    let (routes, cc) = selector.select(&pnet.net, HostId(0), HostId(15), 1, 30_000_000);
    assert_eq!(routes.len(), 4);
    let mut sim = Simulator::new(&pnet.net, SimConfig::default());
    sim.start_flow(FlowSpec {
        src: HostId(0),
        dst: HostId(15),
        size_bytes: 30_000_000,
        routes,
        cc,
        owner_tag: 0,
    });
    run_to_completion(&mut sim);
    let goodput = metrics::goodput_gbps(&sim.records[0]);
    // 4 planes x 100G: expect well beyond a single plane's 100G.
    assert!(
        goodput > 250.0,
        "4-subflow MPTCP goodput {goodput} Gb/s should exceed 250"
    );
}

// ---------------------------------------------------------------------
// The host default policy dispatches by size
// ---------------------------------------------------------------------

#[test]
fn size_threshold_policy_single_path_small_multipath_large() {
    let topology = TopologyKind::Jellyfish {
        n_tors: 12,
        degree: 4,
        hosts_per_tor: 2,
    };
    let pnet = PNetSpec::new(topology, NetworkClass::ParallelHeterogeneous, 4, 1).build();
    let mut selector = pnet.selector(PathPolicy::paper_default(16));
    let (small, _) = selector.select(&pnet.net, HostId(0), HostId(20), 1, 50_000_000);
    let (large, _) = selector.select(&pnet.net, HostId(0), HostId(20), 1, 1_500_000_000);
    assert_eq!(small.len(), 1, "<=100MB should be single path");
    assert!(large.len() >= 4, ">=1GB should be multipath");
}
