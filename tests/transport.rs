//! Focused transport-behaviour tests: congestion-control variants, loss
//! recovery, timer backoff, and DCTCP/Reno contrasts, exercised through the
//! full stack.

use pnet::htsim::{
    run, run_to_completion, CcAlgo, FlowSpec, NullDriver, SimConfig, SimTime, Simulator,
};
use pnet::routing::{host_route, RouteAlgo, Router};
use pnet::topology::{assemble_homogeneous, FatTree, HostId, LinkProfile, Network, PlaneId};

fn net(planes: usize) -> Network {
    assemble_homogeneous(
        &FatTree::three_tier(4),
        planes,
        &LinkProfile::paper_default(),
    )
}

fn route(net: &Network, src: HostId, dst: HostId, plane: u16) -> Vec<pnet::topology::LinkId> {
    let router = Router::new(net, RouteAlgo::Ksp { k: 2 });
    let p = router.paths_in_plane(PlaneId(plane), net.rack_of_host(src), net.rack_of_host(dst))[0]
        .clone();
    host_route(net, src, dst, &p).unwrap()
}

#[test]
fn uncoupled_mptcp_is_more_aggressive_than_lia() {
    // A 2-subflow MPTCP connection shares one bottleneck with a plain TCP
    // flow for a long steady-state window. LIA couples the subflows so the
    // pair takes roughly one TCP's share; uncoupled subflows behave like
    // two TCPs and take more. Measured as bytes acked at a fixed horizon.
    let n = net(1);
    let huge = 1_000_000_000u64; // nobody finishes inside the window
    let share_of = |cc: CcAlgo| -> f64 {
        let mut cfg = SimConfig::default();
        cfg.tcp.min_rto = SimTime::from_ms(1);
        let mut sim = Simulator::new(&n, cfg);
        let tcp_route = route(&n, HostId(2), HostId(15), 0);
        let tcp = sim.start_flow(FlowSpec {
            src: HostId(2),
            dst: HostId(15),
            size_bytes: huge,
            routes: vec![tcp_route],
            cc: CcAlgo::Reno,
            owner_tag: 0,
        });
        // Multipath flow: two distinct paths that share the destination
        // downlink (the common bottleneck).
        let router = Router::new(&n, RouteAlgo::Ksp { k: 4 });
        let paths = router.paths_in_plane(
            PlaneId(0),
            n.rack_of_host(HostId(4)),
            n.rack_of_host(HostId(15)),
        );
        let r1 = host_route(&n, HostId(4), HostId(15), &paths[0]).unwrap();
        let r2 = host_route(&n, HostId(4), HostId(15), &paths[1]).unwrap();
        let mp = sim.start_flow(FlowSpec {
            src: HostId(4),
            dst: HostId(15),
            size_bytes: huge,
            routes: vec![r1, r2],
            cc,
            owner_tag: 1,
        });
        // Long horizon + short min-RTO: a single timeout must not dominate
        // the share measurement (we are comparing steady-state additive
        // increase behaviour, not loss-recovery luck).
        run(&mut sim, &mut NullDriver, Some(SimTime::from_ms(60)));
        sim.conn(mp).acked as f64 / sim.conn(tcp).acked.max(1) as f64
    };
    let lia_share = share_of(CcAlgo::Lia);
    let unc_share = share_of(CcAlgo::Uncoupled);
    assert!(
        unc_share > lia_share * 1.1,
        "uncoupled share {unc_share:.3} should exceed LIA share {lia_share:.3}"
    );
    assert!(
        lia_share > 0.3,
        "LIA flow starved unexpectedly (share {lia_share:.3})"
    );
}

#[test]
fn rto_backoff_survives_a_blackout() {
    // Start a flow, cut the path mid-transfer, restore it later: the flow
    // stalls on exponential-backoff timeouts during the blackout and then
    // completes after the repair.
    let n = net(2);
    let r = route(&n, HostId(0), HostId(15), 0);
    let fabric_cable = r[1]; // first fabric link on the path
    let mut sim = Simulator::new(&n, SimConfig::default());
    let id = sim.start_flow(FlowSpec {
        src: HostId(0),
        dst: HostId(15),
        size_bytes: 4_000_000,
        routes: vec![r],
        cc: CcAlgo::Reno,
        owner_tag: 0,
    });
    // Let it ramp, then black out the path for 40 ms (4 min-RTOs).
    run(&mut sim, &mut NullDriver, Some(SimTime::from_us(50)));
    assert!(sim.conn(id).finish.is_none());
    sim.fail_link(fabric_cable);
    run(&mut sim, &mut NullDriver, Some(SimTime::from_ms(40)));
    assert!(
        sim.conn(id).finish.is_none(),
        "flow finished through a dark link"
    );
    let timeouts_during = sim.conn(id).timeouts();
    assert!(
        timeouts_during >= 2,
        "expected RTO retries, got {timeouts_during}"
    );
    let progress_during = sim.conn(id).acked;
    sim.restore_link(fabric_cable);
    run(&mut sim, &mut NullDriver, None);
    let conn = sim.conn(id);
    assert!(conn.finish.is_some(), "flow never recovered after repair");
    assert!(conn.acked > progress_during);
    // Backoff must have grown the retry gaps: with min-RTO 10 ms and ~40 ms
    // of blackout, un-backed-off retries would fire ~4 times; exponential
    // backoff (10, 20, 40, ...) keeps it to at most 3.
    assert!(
        timeouts_during <= 3,
        "timer backoff missing: {timeouts_during} RTOs in 40 ms"
    );
}

#[test]
fn backoff_grows_rto_exponentially() {
    use pnet::htsim::TcpConfig;
    let cfg = TcpConfig::default();
    let mut sub = pnet::htsim::tcp::Subflow::new(
        std::sync::Arc::from(vec![pnet::topology::LinkId(0)]),
        std::sync::Arc::from(vec![pnet::topology::LinkId(1)]),
        &cfg,
    );
    let base = sub.effective_rto(&cfg);
    sub.backoff = 1;
    let once = sub.effective_rto(&cfg);
    sub.backoff = 3;
    let thrice = sub.effective_rto(&cfg);
    assert_eq!(once.as_ps(), base.as_ps() * 2);
    assert_eq!(thrice.as_ps(), base.as_ps() * 8);
    sub.backoff = 40; // clamped to max_rto
    assert_eq!(sub.effective_rto(&cfg), cfg.max_rto);
}

#[test]
fn dctcp_fairly_shares_with_dctcp() {
    // Two DCTCP flows sharing one bottleneck converge to similar FCTs
    // (proportional windows) with no drops.
    let n = net(1);
    let cfg = SimConfig {
        ecn_threshold_packets: Some(20),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&n, cfg);
    for src in [HostId(4), HostId(8)] {
        let r = route(&n, src, HostId(15), 0);
        sim.start_flow(FlowSpec {
            src,
            dst: HostId(15),
            size_bytes: 6_000_000,
            routes: vec![r],
            cc: CcAlgo::Dctcp,
            owner_tag: src.0 as u64,
        });
    }
    run_to_completion(&mut sim);
    assert_eq!(sim.dropped_packets, 0, "DCTCP should avoid drops entirely");
    let fcts: Vec<f64> = sim.records.iter().map(|r| r.fct().as_us_f64()).collect();
    let ratio = fcts[0].max(fcts[1]) / fcts[0].min(fcts[1]);
    assert!(ratio < 1.3, "DCTCP share imbalance: {fcts:?}");
    // Work conservation: 12 MB over a 100G link >= 960 us.
    assert!(fcts.iter().cloned().fold(0.0, f64::max) >= 930.0);
}

#[test]
fn single_packet_flows_have_minimal_fct() {
    // Sub-MTU flows: FCT = one-way data + return ACK, no window effects.
    let n = net(4);
    let mut sim = Simulator::new(&n, SimConfig::default());
    for plane in 0..4u16 {
        let r = route(&n, HostId(0), HostId(15), plane);
        sim.start_flow(FlowSpec {
            src: HostId(0),
            dst: HostId(15),
            size_bytes: 64, // single packet
            routes: vec![r],
            cc: CcAlgo::Reno,
            owner_tag: plane as u64,
        });
    }
    run_to_completion(&mut sim);
    for rec in &sim.records {
        let fct = rec.fct().as_us_f64();
        // 6 links each way, ~4.2 us propagation per direction + tiny
        // serialization: between 8 and 12 us.
        assert!((8.0..12.0).contains(&fct), "fct {fct}us out of range");
        assert_eq!(rec.retransmits, 0);
    }
}

#[test]
fn dctcp_first_window_spans_initial_flight() {
    // Regression: `dctcp_window_end` used to start at 0, so the very first
    // ACK (cum = 1 >= 0) closed a degenerate one-ACK observation window and
    // EWMA-updated alpha from a single sample. The window end must be seeded
    // at first transmission to cover the whole initial flight.
    let n = net(1);
    let r = route(&n, HostId(0), HostId(15), 0);
    let mut sim = Simulator::new(&n, SimConfig::default());
    let id = sim.start_flow(FlowSpec {
        src: HostId(0),
        dst: HostId(15),
        size_bytes: 15_000, // exactly the initial cwnd of 10 packets
        routes: vec![r],
        cc: CcAlgo::Dctcp,
        owner_tag: 0,
    });
    // The initial burst (10 packets, no ACKs yet) must all be inside the
    // first observation window.
    let sub = &sim.conn(id).subflows[0];
    assert_eq!(sub.highest_sent, 10);
    assert_eq!(
        sub.dctcp_window_end, 10,
        "first observation window must span the initial flight"
    );
    run_to_completion(&mut sim);
    // Early-alpha trajectory: with no ECN marking, exactly ONE window (the
    // seeded 10-packet one) closes over this transfer, so alpha decays by a
    // single EWMA step: 1.0 * (1 - 1/16) = 0.9375. The pre-fix code closed
    // an extra degenerate window on the first ACK, landing at 0.9375^2.
    let alpha = sim.conn(id).subflows[0].dctcp_alpha;
    assert!(
        (alpha - 0.9375).abs() < 1e-12,
        "early alpha trajectory off: {alpha} != 0.9375"
    );
}

#[test]
fn dctcp_counts_marks_carried_by_dupacks() {
    // Regression: the dupack branch of `on_ack` used to ignore ECN-Echo, so
    // marks carried by duplicate ACKs vanished from DCTCP's marked-fraction
    // accounting exactly when the network was congested enough to drop.
    // Force the situation: a deep incast into one host with a small buffer
    // (drops -> dupacks) and a low ECN threshold (the surviving packets
    // behind each hole are CE-marked, so their dupacks carry ECE).
    let n = net(1);
    let mut cfg = SimConfig {
        ecn_threshold_packets: Some(5),
        ..SimConfig::default()
    };
    cfg.queue_bytes = 20 * 1500;
    let mut sim = Simulator::new(&n, cfg);
    let dst = HostId(15);
    let mut ids = Vec::new();
    for h in 0..12u32 {
        let src = HostId(h);
        let r = route(&n, src, dst, 0);
        ids.push(sim.start_flow(FlowSpec {
            src,
            dst,
            size_bytes: 600_000,
            routes: vec![r],
            cc: CcAlgo::Dctcp,
            owner_tag: h as u64,
        }));
    }
    run_to_completion(&mut sim);
    assert!(sim.dropped_packets > 0, "incast must overflow the buffer");
    let dupack_marks: u64 = ids
        .iter()
        .map(|&id| {
            sim.conn(id)
                .subflows
                .iter()
                .map(|s| s.dctcp_dupack_marks)
                .sum::<u64>()
        })
        .sum();
    assert!(
        dupack_marks > 0,
        "marked dupacks must enter DCTCP's accounting"
    );
}

#[test]
fn flow_record_reports_requested_bytes() {
    // Regression: FlowRecord.size_bytes used to round the transfer up to
    // whole MTUs, overstating goodput for small flows (a 64-byte RPC
    // reported as 1500 bytes = 23x).
    let n = net(1);
    let mut sim = Simulator::new(&n, SimConfig::default());
    for (i, size) in [1_000u64, 3_001, 1_500].into_iter().enumerate() {
        let r = route(&n, HostId(i as u32), HostId(15), 0);
        sim.start_flow(FlowSpec {
            src: HostId(i as u32),
            dst: HostId(15),
            size_bytes: size,
            routes: vec![r],
            cc: CcAlgo::Reno,
            owner_tag: size,
        });
    }
    run_to_completion(&mut sim);
    assert_eq!(sim.records.len(), 3);
    for rec in &sim.records {
        assert_eq!(
            rec.size_bytes, rec.owner_tag,
            "record must report the requested size, not the MTU-rounded one"
        );
        let gput = pnet::htsim::metrics::goodput_gbps(rec);
        assert!(gput > 0.0 && gput.is_finite());
        // No goodput above the 100G line rate once sizes are honest.
        assert!(gput < 100.0, "goodput {gput} Gb/s exceeds line rate");
    }
}

#[test]
fn queue_stats_account_every_packet() {
    let n = net(1);
    let mut sim = Simulator::new(&n, SimConfig::default());
    let r = route(&n, HostId(0), HostId(15), 0);
    let first_link = r[0];
    let size = 1_500_000u64; // 1000 packets
    sim.start_flow(FlowSpec {
        src: HostId(0),
        dst: HostId(15),
        size_bytes: size,
        routes: vec![r],
        cc: CcAlgo::Reno,
        owner_tag: 0,
    });
    run_to_completion(&mut sim);
    let qs = sim.queue_stats(first_link);
    let rec = &sim.records[0];
    // Every data packet (fresh + retransmitted) passed the first uplink.
    assert_eq!(qs.enqueued + qs.total_dropped(), 1000 + rec.retransmits);
}
