//! Property-based tests (proptest) over the core data structures and
//! invariants of the whole workspace.

use proptest::prelude::*;

use pnet::flowsim::{commodity, mcf, Commodity};
use pnet::htsim::{run_to_completion, CcAlgo, FlowSpec, SimConfig, Simulator};
use pnet::routing::{self, bfs, ksp, Parallelism, PlaneGraph, RouteAlgo, Router};
use pnet::topology::{
    assemble_homogeneous, failures, ChurnEvent, ChurnSchedule, FatTree, HostId, Jellyfish,
    LinkProfile, Network, PlaneId, RackId, Xpander,
};
use pnet::workloads::sizes::EmpiricalCdf;

// ---------------------------------------------------------------------
// Topology invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn jellyfish_always_regular_and_connected(
        n_tors in 4usize..40,
        degree in 2usize..6,
        seed in 0u64..1000,
    ) {
        prop_assume!(degree < n_tors);
        prop_assume!(n_tors * degree % 2 == 0);
        let jf = Jellyfish::new(n_tors, degree, 1, seed);
        let edges = jf.generate_edges();
        prop_assert_eq!(edges.len(), n_tors * degree / 2);
        let mut deg = vec![0usize; n_tors];
        for &(a, b) in &edges {
            prop_assert!(a != b);
            deg[a] += 1;
            deg[b] += 1;
        }
        prop_assert!(deg.iter().all(|&d| d == degree));
        let net = assemble_homogeneous(&jf, 1, &LinkProfile::paper_default());
        prop_assert!(net.plane_connects_all_hosts(PlaneId(0)));
    }

    #[test]
    fn xpander_lifts_stay_regular(degree in 3usize..6, lifts in 0u32..4, seed in 0u64..100) {
        let x = Xpander::new(degree, lifts, 1, seed);
        let edges = x.generate_edges();
        let n = x.n_tors();
        prop_assert_eq!(edges.len(), n * degree / 2);
        let mut deg = vec![0usize; n];
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &edges {
            prop_assert!(a != b, "self loop");
            let k = (a.min(b), a.max(b));
            prop_assert!(seen.insert(k), "multi-edge");
            deg[a] += 1;
            deg[b] += 1;
        }
        prop_assert!(deg.iter().all(|&d| d == degree));
    }

    #[test]
    fn multi_plane_assembly_validates(planes in 1usize..5, seed in 0u64..50) {
        let jf = Jellyfish::new(10, 3, 2, seed);
        let net = assemble_homogeneous(&jf, planes, &LinkProfile::paper_default());
        prop_assert_eq!(net.validate(), Ok(()));
        prop_assert_eq!(net.n_planes() as usize, planes);
        // One uplink per host per plane.
        for h in 0..net.n_hosts() {
            for p in net.planes() {
                prop_assert!(net.host_uplink(HostId(h as u32), p).is_some());
            }
        }
    }

    #[test]
    fn failure_injection_is_partial(frac in 0.0f64..1.0, seed in 0u64..50) {
        let mut net = assemble_homogeneous(
            &FatTree::three_tier(4), 2, &LinkProfile::paper_default());
        let total = failures::fabric_cables(&net, None).len();
        let failed = failures::fail_random_fraction(&mut net, frac, seed);
        prop_assert_eq!(failed.len(), failures::fraction_count(total, frac));
        // The integer-exact count stays within half a cable of len * frac.
        prop_assert!((failed.len() as f64 - total as f64 * frac).abs() <= 0.5 + 1e-6);
        failures::restore_all(&mut net);
        prop_assert_eq!(failures::failed_fraction(&net), 0.0);
    }
}

// ---------------------------------------------------------------------
// Routing invariants
// ---------------------------------------------------------------------

fn small_jellyfish(seed: u64) -> Network {
    assemble_homogeneous(
        &Jellyfish::new(12, 3, 1, seed),
        2,
        &LinkProfile::paper_default(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn yen_paths_sorted_simple_distinct(
        seed in 0u64..200, a in 0u32..12, b in 0u32..12, k in 1usize..12,
    ) {
        prop_assume!(a != b);
        let net = small_jellyfish(seed);
        let pg = PlaneGraph::build(&net, PlaneId(0));
        let paths = ksp(&pg, RackId(a), RackId(b), k);
        prop_assert!(!paths.is_empty());
        prop_assert!(paths.len() <= k);
        for w in paths.windows(2) {
            prop_assert!(w[0].links.len() <= w[1].links.len(), "not sorted");
            prop_assert!(w[0].links != w[1].links, "duplicate");
        }
        for p in &paths {
            prop_assert!(p.validate(&net).is_ok(), "invalid path");
        }
        // First path length equals BFS distance.
        let sp = bfs::shortest_path(&pg, RackId(a), RackId(b)).unwrap();
        prop_assert_eq!(paths[0].links.len(), sp.links.len());
    }

    #[test]
    fn cross_plane_merge_is_sorted_prefix_monotone(
        seed in 0u64..100, a in 0u32..12, b in 0u32..12,
    ) {
        prop_assume!(a != b);
        let net = small_jellyfish(seed);
        let router = Router::new(&net, RouteAlgo::Ksp { k: 6 });
        let k4 = router.k_best_across_planes(RackId(a), RackId(b), 4);
        let k8 = router.k_best_across_planes(RackId(a), RackId(b), 8);
        prop_assert_eq!(&k8[..4], &k4[..]);
        for w in k8.windows(2) {
            prop_assert!(w[0].links.len() <= w[1].links.len());
        }
    }

    #[test]
    fn rotate_ties_preserves_set_and_lengths(
        seed in 0u64..100, a in 0u32..12, b in 0u32..12, hash: u64,
    ) {
        prop_assume!(a != b);
        let net = small_jellyfish(seed);
        let router = Router::new(&net, RouteAlgo::Ksp { k: 8 });
        let orig = router.k_best_across_planes(RackId(a), RackId(b), 8);
        let mut rotated = orig.clone();
        routing::rotate_ties(&mut rotated, hash);
        // Same multiset...
        let mut s1 = orig.clone();
        let mut s2 = rotated.clone();
        routing::sort_paths(&mut s1);
        routing::sort_paths(&mut s2);
        prop_assert_eq!(s1, s2);
        // ...still sorted by length.
        for w in rotated.windows(2) {
            prop_assert!(w[0].links.len() <= w[1].links.len());
        }
    }

    /// Incremental delta repair is *equivalent* to rebuilding: after any
    /// seeded random walk of cable down/up events, the live router's table
    /// fingerprint must be byte-identical to a from-scratch router built on
    /// the final link state — same path sets, same order, same tie-breaks.
    #[test]
    fn churn_refresh_matches_full_rebuild(
        seed in 0u64..60,
        n_events in 1usize..16,
        churn_seed in 0u64..60,
    ) {
        let mut net = small_jellyfish(seed);
        let router =
            Router::with_parallelism(&net, RouteAlgo::Ksp { k: 4 }, Parallelism::Serial);
        router.precompute_all_pairs_with(Parallelism::Serial);
        let sched = ChurnSchedule::random_walk(&net, n_events, 0.25, churn_seed);
        prop_assume!(!sched.events.is_empty());
        for &ev in &sched.events {
            ev.apply(&mut net);
            let stats = router.refresh(&net);
            prop_assert!(!stats.full_rebuild, "cable churn must take the delta path");
        }
        let fresh =
            Router::with_parallelism(&net, RouteAlgo::Ksp { k: 4 }, Parallelism::Serial);
        fresh.precompute_all_pairs_with(Parallelism::Serial);
        prop_assert_eq!(router.table_fingerprint(), fresh.table_fingerprint());
    }

    /// `ChurnEvent::Up` on a cable that was never failed is a deterministic
    /// no-op (`restore_cable` is an idempotent bool set): link state is
    /// untouched and the delta-repair path leaves the table fingerprint
    /// exactly where it was.
    #[test]
    fn up_on_healthy_cable_is_a_noop(seed in 0u64..40, pick in 0usize..64) {
        let mut net = small_jellyfish(seed);
        let cables = failures::fabric_cables(&net, None);
        let cable = cables[pick % cables.len()];
        let router =
            Router::with_parallelism(&net, RouteAlgo::Ksp { k: 4 }, Parallelism::Serial);
        router.precompute_all_pairs_with(Parallelism::Serial);
        let fp_before = router.table_fingerprint();
        let up_before: Vec<bool> = net.links().map(|(_, l)| l.up).collect();
        ChurnEvent::Up(cable).apply(&mut net);
        let up_after: Vec<bool> = net.links().map(|(_, l)| l.up).collect();
        prop_assert_eq!(up_before, up_after, "restoring a healthy cable flipped link state");
        let stats = router.refresh(&net);
        prop_assert!(!stats.full_rebuild, "a no-op event must not force a rebuild");
        prop_assert_eq!(
            router.table_fingerprint(), fp_before,
            "no-op churn moved the table fingerprint"
        );
    }

    /// `random_walk` with the concurrent-down cap floored at one cable must
    /// still emit exactly `n_events` events (a strict down/up alternation),
    /// never exceed the cap, and stay deterministic in the seed — no
    /// livelock, no panic when the cap leaves a single eligible cable.
    #[test]
    fn random_walk_cap_floor_still_makes_progress(
        seed in 0u64..40, walk_seed in 0u64..40,
    ) {
        let net = small_jellyfish(seed);
        // fraction 0.0 floors the cap at one concurrent down cable.
        let sched = ChurnSchedule::random_walk(&net, 12, 0.0, walk_seed);
        prop_assert_eq!(sched.events.len(), 12);
        let mut down = 0i64;
        for &ev in &sched.events {
            match ev {
                ChurnEvent::Down(_) => down += 1,
                ChurnEvent::Up(_) => down -= 1,
            }
            prop_assert!((0..=1).contains(&down), "cap floor of one exceeded");
        }
        let replay = ChurnSchedule::random_walk(&net, 12, 0.0, walk_seed);
        prop_assert_eq!(sched.events, replay.events);
    }

    /// With no fabric cables at all, neither direction has an eligible
    /// cable: the walk must terminate with an empty schedule rather than
    /// spinning or panicking on an empty sample range.
    #[test]
    fn random_walk_with_no_cables_is_an_empty_schedule(
        n_events in 0usize..32, walk_seed: u64,
    ) {
        let net = Network::default();
        let sched = ChurnSchedule::random_walk(&net, n_events, 0.5, walk_seed);
        prop_assert!(sched.events.is_empty());
    }

    #[test]
    fn host_routes_chain_endpoints(seed in 0u64..50, a in 0u32..12, b in 0u32..12) {
        prop_assume!(a != b);
        let net = small_jellyfish(seed);
        let router = Router::new(&net, RouteAlgo::Ksp { k: 4 });
        for p in router.k_best_across_planes(RackId(a), RackId(b), 4) {
            let route = routing::host_route(&net, HostId(a), HostId(b), &p).unwrap();
            prop_assert_eq!(net.link(route[0]).src, net.host_node(HostId(a)));
            prop_assert_eq!(net.link(*route.last().unwrap()).dst, net.host_node(HostId(b)));
            for w in route.windows(2) {
                prop_assert_eq!(net.link(w[0]).dst, net.link(w[1]).src);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Flow-level solver invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn maxmin_always_feasible_and_fair(
        n_links in 1usize..8,
        n_flows in 1usize..10,
        seed: u64,
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let caps: Vec<f64> = (0..n_links).map(|_| rng.random_range(1.0..100.0)).collect();
        let flows: Vec<Vec<usize>> = (0..n_flows)
            .map(|_| {
                let len = rng.random_range(1..=n_links);
                (0..len).map(|_| rng.random_range(0..n_links)).collect()
            })
            .collect();
        let rates = pnet::flowsim::maxmin::maxmin_rates(&caps, &flows);
        prop_assert!(pnet::flowsim::maxmin::is_maxmin_fair(&caps, &flows, &rates));
    }

    #[test]
    fn gk_solution_is_feasible_and_positive(seed in 0u64..50, eps in 0.05f64..0.3) {
        let net = small_jellyfish(seed);
        let c = commodity::all_to_all(6);
        let sol = mcf::solve(&net, &c, &mcf::PathMode::AnyPath, eps);
        prop_assert!(sol.lambda > 0.0);
        let caps = mcf::link_capacities(&net);
        for (f, cap) in sol.link_flow.iter().zip(&caps) {
            prop_assert!(*f <= cap * 1.000001 + 1.0, "infeasible: {f} > {cap}");
        }
        // Rates consistent with lambda.
        for (r, cm) in sol.rates.iter().zip(&c) {
            prop_assert!(*r >= sol.lambda * cm.demand * 0.999999);
        }
    }

    /// Warm-started GK after a churn walk lands within the pinned λ
    /// tolerance of a cold re-solve on the same link state, and stays a
    /// feasible primal (the congestion rescale guarantees that
    /// unconditionally, but pin it anyway).
    #[test]
    fn warm_gk_matches_cold_after_churn(seed in 0u64..20, churn_seed in 0u64..20) {
        let mut net = small_jellyfish(seed);
        let c = commodity::all_to_all(6);
        let base = mcf::solve(&net, &c, &mcf::PathMode::AnyPath, 0.1);
        ChurnSchedule::random_walk(&net, 6, 0.15, churn_seed).apply_all(&mut net);
        // AnyPath needs some plane to connect every commodity pair.
        prop_assume!(net.planes().any(|p| net.plane_connects_all_hosts(p)));
        let cold = mcf::solve(&net, &c, &mcf::PathMode::AnyPath, 0.1);
        let warm = mcf::solve_warm(&net, &c, &mcf::PathMode::AnyPath, 0.1, &base);
        prop_assert!(
            (warm.lambda - cold.lambda).abs() <= mcf::WARM_LAMBDA_TOLERANCE * cold.lambda,
            "warm λ {} vs cold λ {} exceeds the pinned tolerance",
            warm.lambda, cold.lambda
        );
        prop_assert!(warm.phases < cold.phases, "warm start saved no phases");
        let caps = mcf::link_capacities(&net);
        for (f, cap) in warm.link_flow.iter().zip(&caps) {
            prop_assert!(*f <= cap * 1.000001 + 1.0, "warm primal infeasible");
        }
    }

    #[test]
    fn gk_lambda_below_trivial_upper_bound(seed in 0u64..30) {
        // One commodity: lambda * d can never exceed the host uplink total.
        let net = small_jellyfish(seed);
        let c = vec![Commodity::unit(HostId(0), HostId(7))];
        let sol = mcf::solve(&net, &c, &mcf::PathMode::AnyPath, 0.1);
        let uplink_total = 2.0 * 100e9; // 2 planes x 100G
        prop_assert!(sol.rates[0] <= uplink_total * 1.001);
    }
}

// ---------------------------------------------------------------------
// Workload invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cdf_quantile_monotone_and_in_support(
        p1 in 0.001f64..1.0, p2 in 0.001f64..1.0,
    ) {
        let cdf = EmpiricalCdf::new(&[(1_000.0, 0.3), (50_000.0, 0.8), (2_000_000.0, 1.0)]);
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        prop_assert!(cdf.quantile(lo) <= cdf.quantile(hi));
        prop_assert!(cdf.quantile(lo) >= 1_000);
        prop_assert!(cdf.quantile(hi) <= 2_000_000);
    }

    #[test]
    fn permutations_are_derangements(n in 2usize..60, seed: u64) {
        let p = pnet::workloads::tm::random_permutation(n, seed);
        let mut seen = vec![false; n];
        for (i, &j) in p.iter().enumerate() {
            prop_assert!(i != j);
            prop_assert!(!seen[j]);
            seen[j] = true;
        }
    }
}

// ---------------------------------------------------------------------
// Packet simulator invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_flow_completes_with_conservation(
        seed in 0u64..30,
        n_flows in 1usize..8,
        size_kb in 1u64..500,
    ) {
        let net = small_jellyfish(seed);
        let router = Router::new(&net, RouteAlgo::Ksp { k: 2 });
        let mut sim = Simulator::new(&net, SimConfig::default());
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for i in 0..n_flows {
            let a = rng.random_range(0..12u32);
            let mut b = rng.random_range(0..11u32);
            if b >= a { b += 1; }
            let paths = router.k_best_across_planes(RackId(a), RackId(b), 2);
            let routes: Vec<Vec<pnet::topology::LinkId>> = paths
                .iter()
                .filter_map(|p| routing::host_route(&net, HostId(a), HostId(b), p))
                .collect();
            sim.start_flow(FlowSpec {
                src: HostId(a),
                dst: HostId(b),
                size_bytes: size_kb * 1000,
                routes,
                cc: CcAlgo::Lia,
                owner_tag: i as u64,
            });
        }
        run_to_completion(&mut sim);
        prop_assert_eq!(sim.records.len(), n_flows, "some flow never finished");
        for rec in &sim.records {
            prop_assert!(rec.finish >= rec.start);
            // Conservation: every assigned packet was acked exactly once.
            let conn = sim.conn(rec.conn);
            prop_assert_eq!(conn.acked, conn.size_packets);
            let sent: u64 = conn.subflows.iter().map(|s| s.highest_sent).sum();
            prop_assert_eq!(sent, conn.size_packets);
        }
    }
}

// ---------------------------------------------------------------------
// Calendar event queue vs. reference binary-heap model
// ---------------------------------------------------------------------

use pnet::htsim::event::{Event, EventKind, EventQueue};
use pnet::htsim::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The calendar/ladder queue must pop the exact sequence a binary heap
    /// ordered by (time, insertion seq) would: same times, same identities,
    /// for any interleaving of schedules and pops. AppTimer tags carry the
    /// identity; they double as the model's tie-break because they are
    /// assigned in schedule order. Offsets are relative to the time of the
    /// most recently popped event ("now"), mirroring the simulator's
    /// invariant that nothing is scheduled in the past, and span same-slot
    /// (< 2^14 ps), same-window (< ~67 us), and far-future (overflow ladder)
    /// distances.
    #[test]
    fn calendar_queue_matches_binary_heap_model(
        seed in 0u64..400,
        n_ops in 1usize..400,
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

        let mut q = EventQueue::new();
        let mut model: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut now = 0u64;
        let mut next_tag = 0u64;

        let check_pop = |got: Option<Event>, want: Option<(u64, u64)>|
         -> Result<Option<u64>, TestCaseError> {
            match (got, want) {
                (None, None) => Ok(None),
                (Some(ev), Some((t, tag))) => {
                    prop_assert_eq!(ev.time, SimTime::from_ps(t));
                    let EventKind::AppTimer { tag: got_tag, .. } = ev.kind else {
                        panic!("queue returned a non-AppTimer event");
                    };
                    prop_assert_eq!(got_tag, tag);
                    Ok(Some(t))
                }
                (got, want) => {
                    prop_assert!(false, "pop disagreement: got {:?}, want {:?}", got, want);
                    Ok(None)
                }
            }
        };

        for _ in 0..n_ops {
            match rng.random_range(0..10u32) {
                // Schedule: slot-, window-, and ladder-scale offsets.
                roll @ 0..=5 => {
                    let offset = match roll {
                        0 | 1 => rng.random_range(0..100_000u64),
                        2 | 3 => rng.random_range(0..70_000_000u64),
                        _ => rng.random_range(0..10_000_000_000u64),
                    };
                    let at = now + offset;
                    q.schedule(
                        SimTime::from_ps(at),
                        EventKind::AppTimer { app: 0, tag: next_tag },
                    );
                    model.push(Reverse((at, next_tag)));
                    next_tag += 1;
                }
                6..=8 => {
                    prop_assert_eq!(
                        q.peek_time(),
                        model.peek().map(|Reverse((t, _))| SimTime::from_ps(*t))
                    );
                    let want = model.pop().map(|Reverse(e)| e);
                    if let Some(t) = check_pop(q.pop(), want)? {
                        now = t;
                    }
                }
                // The batched-dispatch fast path: pop only events at exactly now.
                _ => {
                    let head_is_now =
                        model.peek().is_some_and(|Reverse((t, _))| *t == now);
                    let want = if head_is_now {
                        model.pop().map(|Reverse(e)| e)
                    } else {
                        None
                    };
                    check_pop(q.pop_if_at(SimTime::from_ps(now)), want)?;
                }
            }
            prop_assert_eq!(q.len(), model.len());
        }

        // Drain both to the end: the tails must agree too.
        while let Some(want) = model.pop().map(|Reverse(e)| e) {
            if let Some(t) = check_pop(q.pop(), Some(want))? {
                now = t;
            }
        }
        let _ = now;
        prop_assert!(q.pop().is_none());
        prop_assert!(q.is_empty());
        prop_assert_eq!(q.dispatched(), next_tag);
    }
}
