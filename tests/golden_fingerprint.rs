//! Golden output fingerprints for the routing/MCF hot paths.
//!
//! The KSP/MCF overhaul (CSR plane graphs, epoch-stamped scratch, Lawler's
//! optimization) promises *byte-identical* outputs to the straightforward
//! reference implementations. These tests pin that promise down across
//! sessions: each hashes a complete all-pairs route table (or a GK solve)
//! into a single FNV-1a fingerprint and compares it against a committed
//! constant. Any change to path contents, path order, tie-breaking, or
//! float operation order in GK shows up as a fingerprint mismatch — if one
//! of these fails after an optimization, the optimization changed observable
//! behaviour and must be fixed (do not re-pin without understanding why).

use pnet::flowsim::{commodity, mcf};
use pnet::routing::{Parallelism, RouteAlgo, Router};
use pnet::topology::{
    assemble_homogeneous, FatTree, Jellyfish, LinkProfile, Network, PlaneId, RackId,
};
use pnet::workloads::tm;

/// 64-bit FNV-1a, seeded with the standard offset basis. No external crates:
/// the point is a stable, dependency-free digest of structured output.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, x: u64) {
        for byte in x.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Hash the full all-pairs route table of `net` under KSP-k, in canonical
/// (src, dst, plane) order: every path's plane and exact link sequence
/// contributes, so path set, order, and tie-breaking are all pinned.
fn ksp_table_fingerprint(net: &Network, k: usize) -> u64 {
    let router = Router::with_parallelism(net, RouteAlgo::Ksp { k }, Parallelism::Serial);
    router.precompute_all_pairs_with(Parallelism::Serial);
    let mut h = Fnv::new();
    let racks = router.n_racks();
    for a in 0..racks {
        for b in 0..racks {
            if a == b {
                continue;
            }
            for p in 0..router.n_planes() {
                let paths =
                    router.paths_in_plane(PlaneId(p as u16), RackId(a as u32), RackId(b as u32));
                h.u64(paths.len() as u64);
                for path in paths.iter() {
                    h.u64(path.plane.0 as u64);
                    h.u64(path.links.len() as u64);
                    for l in &path.links {
                        h.u64(l.0 as u64);
                    }
                }
            }
        }
    }
    h.0
}

#[test]
fn jellyfish_ksp_table_fingerprint_is_stable() {
    let net = assemble_homogeneous(
        &Jellyfish::new(16, 4, 1, 7),
        2,
        &LinkProfile::paper_default(),
    );
    assert_eq!(
        ksp_table_fingerprint(&net, 8),
        GOLDEN_JELLYFISH_KSP,
        "all-pairs KSP table changed on seeded Jellyfish(16, 4, seed 7) x2 planes, k=8"
    );
}

#[test]
fn fat_tree_ksp_table_fingerprint_is_stable() {
    let net = assemble_homogeneous(&FatTree::three_tier(4), 2, &LinkProfile::paper_default());
    assert_eq!(
        ksp_table_fingerprint(&net, 8),
        GOLDEN_FAT_TREE_KSP,
        "all-pairs KSP table changed on fat tree k=4 x2 planes, KSP k=8"
    );
}

#[test]
fn gk_mcf_lambda_fingerprint_is_stable() {
    // Same construction as bench_report, scaled down: seeded Jellyfish,
    // random-permutation commodities, AnyPath oracle at eps = 0.1. lambda and
    // every per-commodity rate are hashed bit-exactly.
    let net = assemble_homogeneous(
        &Jellyfish::new(16, 4, 1, 7),
        2,
        &LinkProfile::paper_default(),
    );
    let c = commodity::permutation(&tm::random_permutation(16, 7));
    let sol = mcf::solve_with_options(
        &net,
        &c,
        &mcf::PathMode::AnyPath,
        0.1,
        mcf::McfOptions {
            parallelism: Parallelism::Serial,
            ..Default::default()
        },
    );
    let mut h = Fnv::new();
    h.u64(sol.lambda.to_bits());
    h.u64(sol.phases as u64);
    for r in &sol.rates {
        h.u64(r.to_bits());
    }
    assert_eq!(
        h.0, GOLDEN_GK_LAMBDA,
        "GK solve changed (lambda {} over {} phases)",
        sol.lambda, sol.phases
    );
}

#[test]
fn post_churn_ksp_table_fingerprint_is_stable() {
    // A seeded churn walk absorbed through the incremental delta path must
    // land on a pinned table fingerprint — and that fingerprint must equal a
    // from-scratch rebuild on the final link state, tying the pin to the
    // cold-precompute semantics rather than to the repair code itself.
    use pnet::topology::ChurnSchedule;
    let mut net = assemble_homogeneous(
        &Jellyfish::new(16, 4, 1, 7),
        2,
        &LinkProfile::paper_default(),
    );
    let router = Router::with_parallelism(&net, RouteAlgo::Ksp { k: 8 }, Parallelism::Serial);
    router.precompute_all_pairs_with(Parallelism::Serial);
    for &ev in &ChurnSchedule::random_walk(&net, 12, 0.2, 21).events {
        ev.apply(&mut net);
        let stats = router.refresh(&net);
        assert!(!stats.full_rebuild, "cable churn must take the delta path");
    }
    let fresh = Router::with_parallelism(&net, RouteAlgo::Ksp { k: 8 }, Parallelism::Serial);
    fresh.precompute_all_pairs_with(Parallelism::Serial);
    assert_eq!(
        router.table_fingerprint(),
        fresh.table_fingerprint(),
        "incremental repair diverged from a from-scratch rebuild"
    );
    assert_eq!(
        router.table_fingerprint(),
        GOLDEN_POST_CHURN_KSP,
        "post-churn route table changed on seeded Jellyfish(16, 4, seed 7) x2 \
         planes, k=8, random_walk(12 events, 0.2, seed 21)"
    );
}

/// Hash every flow-completion record of a mid-size multi-plane MPTCP run,
/// sorted by owner tag: start/finish timestamps (picosecond-exact), sizes,
/// retransmit/timeout counts, and subflow counts all contribute. Any change
/// to event dispatch order anywhere in the packet engine — queue swap, arena
/// refactor, batching — moves at least one completion time and shows up here.
fn sim_fct_fingerprint() -> u64 {
    use pnet::htsim::{run_to_completion, CcAlgo, FlowSpec, SimConfig, Simulator};
    use pnet::routing::host_route;
    use pnet::topology::HostId;

    let net = assemble_homogeneous(
        &Jellyfish::new(16, 4, 2, 7),
        3,
        &LinkProfile::paper_default(),
    );
    let router = Router::with_parallelism(&net, RouteAlgo::Ksp { k: 2 }, Parallelism::Serial);
    let mut sim = Simulator::new(&net, SimConfig::default());
    let pairs = tm::permutation_pairs(32, 9);
    for (i, &(a, b)) in pairs.iter().enumerate() {
        let (src, dst) = (HostId(a as u32), HostId(b as u32));
        let (ra, rb) = (net.rack_of_host(src), net.rack_of_host(dst));
        // One subflow per plane: a 3-subflow MPTCP connection under LIA.
        let routes: Vec<_> = (0..3u16)
            .map(|p| {
                let path = router.paths_in_plane(PlaneId(p), ra, rb)[0].clone();
                host_route(&net, src, dst, &path).expect("invariant: permutation pair is routable")
            })
            .collect();
        sim.start_flow(FlowSpec {
            src,
            dst,
            size_bytes: 200_000 + 37_000 * (i as u64 % 5),
            routes,
            cc: CcAlgo::Lia,
            owner_tag: i as u64,
        });
    }
    run_to_completion(&mut sim);
    let mut recs: Vec<_> = sim.records.iter().collect();
    recs.sort_by_key(|r| r.owner_tag);
    let mut h = Fnv::new();
    h.u64(recs.len() as u64);
    for r in recs {
        h.u64(r.owner_tag);
        h.u64(u64::from(r.src.0));
        h.u64(u64::from(r.dst.0));
        h.u64(r.size_bytes);
        h.u64(r.start.as_ps());
        h.u64(r.finish.as_ps());
        h.u64(r.retransmits);
        h.u64(r.timeouts);
        h.u64(r.n_subflows as u64);
    }
    h.0
}

#[test]
fn packet_sim_fct_fingerprint_is_stable() {
    assert_eq!(
        sim_fct_fingerprint(),
        GOLDEN_SIM_FCT,
        "packet-level event order changed: a 32-flow 3-plane MPTCP run no \
         longer reproduces the pinned flow-completion records"
    );
}

// Pinned fingerprints. Regenerate only when an *intentional* output change
// lands, and record why in the commit message.
const GOLDEN_JELLYFISH_KSP: u64 = 14853875402589996389;
// Incremental-repair end state of a 12-event churn walk; must also equal a
// from-scratch rebuild (asserted in the same test).
const GOLDEN_POST_CHURN_KSP: u64 = 3576556970543380266;
const GOLDEN_FAT_TREE_KSP: u64 = 11144640133350879781;
// lambda 199901380670.61145 over 2028 phases.
const GOLDEN_GK_LAMBDA: u64 = 2946497110374994333;
// Pinned by the pre-calendar-queue BinaryHeap engine; the calendar/arena
// engine must reproduce it bit-for-bit.
const GOLDEN_SIM_FCT: u64 = 2982833380558106106;
