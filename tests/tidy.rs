//! Tier-1 gate: the workspace must lint clean under `pnet-tidy check`.
//!
//! The same command runs as the `tidy` CI job; this test makes the gate
//! local too, so a plain `cargo test` catches determinism/correctness lint
//! regressions before a push. See DESIGN.md §"Static analysis & determinism
//! contract" for the rule catalogue and the waiver/allowlist machinery.

use std::process::Command;

#[test]
fn workspace_lints_clean() {
    let root = env!("CARGO_MANIFEST_DIR");
    let out = Command::new(env!("CARGO"))
        .args([
            "run",
            "-q",
            "-p",
            "pnet-lint",
            "--bin",
            "pnet-tidy",
            "--",
            "check",
        ])
        .current_dir(root)
        .output()
        .expect("failed to launch cargo");
    assert!(
        out.status.success(),
        "pnet-tidy check failed:\n--- stdout ---\n{}\n--- stderr ---\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
