//! Failure resilience: how mean path length degrades with random link
//! failures — a miniature of the paper's section 5.4 / Figure 14.
//!
//! Run with: `cargo run --release --example failure_resilience`

use pnet::core::analysis;
use pnet::core::{HostStack, PNetSpec, TopologyKind};
use pnet::topology::{failures, HostId, NetworkClass};

fn main() {
    let topology = TopologyKind::Jellyfish {
        n_tors: 50,
        degree: 6,
        hosts_per_tor: 1,
    };
    let planes = 4;

    println!("mean switch hops (all rack pairs) vs random fabric-cable failures\n");
    println!(
        "{:>6} {:>10} {:>12} {:>14}",
        "fail%", "serial", "homogeneous", "heterogeneous"
    );
    for pct in [0u32, 10, 20, 30, 40] {
        let frac = pct as f64 / 100.0;
        let mut serial = PNetSpec::new(topology, NetworkClass::SerialLow, planes, 3)
            .build()
            .net;
        let mut homo = PNetSpec::new(topology, NetworkClass::ParallelHomogeneous, planes, 3)
            .build()
            .net;
        let mut hetero = PNetSpec::new(topology, NetworkClass::ParallelHeterogeneous, planes, 3)
            .build()
            .net;
        failures::fail_random_fraction(&mut serial, frac, 1000 + pct as u64);
        failures::fail_random_fraction(&mut homo, frac, 1000 + pct as u64);
        failures::fail_random_fraction(&mut hetero, frac, 1000 + pct as u64);
        println!(
            "{:>6} {:>10.3} {:>12.3} {:>14.3}",
            pct,
            analysis::mean_hops_single_plane(&serial),
            analysis::mean_hops_best_plane(&homo),
            analysis::mean_hops_best_plane(&hetero),
        );
    }

    // The host-stack view: failing a host's uplink masks that plane.
    println!("\nhost-level failure masking:");
    let mut net = PNetSpec::new(topology, NetworkClass::ParallelHeterogeneous, planes, 3)
        .build()
        .net;
    let mut stack = HostStack::new(&net, HostId(0));
    println!("  live planes before: {:?}", stack.live_planes());
    let uplink = net
        .host_uplink(HostId(0), pnet::topology::PlaneId(2))
        .unwrap();
    failures::fail_cable(&mut net, uplink);
    let changed = stack.refresh(&net);
    println!(
        "  after failing plane-2 uplink: changed {changed:?}, live {:?}",
        stack.live_planes()
    );
}
