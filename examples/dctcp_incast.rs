//! Incast on a P-Net: spreading fan-in over planes, and what DCTCP adds —
//! a runnable version of the paper's section 6.5 discussion.
//!
//! Run with: `cargo run --release --example dctcp_incast`

use pnet::core::{PNetSpec, PathPolicy, TopologyKind};
use pnet::htsim::{metrics, run_to_completion, CcAlgo, FlowSpec, SimConfig, Simulator};
use pnet::topology::{HostId, NetworkClass};

fn main() {
    let spec = PNetSpec::new(
        TopologyKind::Jellyfish {
            n_tors: 16,
            degree: 5,
            hosts_per_tor: 4,
        },
        NetworkClass::ParallelHeterogeneous,
        4,
        7,
    );
    let n_senders = 16;
    let block = 1_000_000u64;

    println!(
        "{n_senders}-to-1 incast of {} blocks into host 0, 4-plane P-Net\n",
        pnet_bench::human_bytes(block)
    );
    println!(
        "{:<28} {:>12} {:>10} {:>8}",
        "transport", "last FCT", "drops", "rtx"
    );
    for (label, cc, ecn) in [
        ("TCP (Reno)", CcAlgo::Reno, None),
        ("DCTCP (K=20 pkts)", CcAlgo::Dctcp, Some(20u32)),
    ] {
        let pnet = spec.build();
        // Round-robin spreads the fan-in across the four planes.
        let mut selector = pnet.selector(PathPolicy::RoundRobin);
        let cfg = SimConfig {
            ecn_threshold_packets: ecn,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&pnet.net, cfg);
        for s in 0..n_senders {
            let src = HostId(4 + 3 * s as u32); // hosts 4,7,...,49 (well inside 0..64)
            let (routes, _) = selector.select(&pnet.net, src, HostId(0), s as u64, block);
            sim.start_flow(FlowSpec {
                src,
                dst: HostId(0),
                size_bytes: block,
                routes,
                cc,
                owner_tag: s as u64,
            });
        }
        run_to_completion(&mut sim);
        let fcts = metrics::fcts_us(&sim.records);
        let last = fcts.iter().cloned().fold(0.0, f64::max);
        println!(
            "{:<28} {:>10.0}us {:>10} {:>8}",
            label,
            last,
            sim.dropped_packets,
            sim.records.iter().map(|r| r.retransmits).sum::<u64>()
        );
    }
    println!();
    println!("DCTCP keeps every queue near its marking threshold: zero drops, no");
    println!("retransmit timeouts, and the incast completes at line rate.");
}
