//! Quickstart: build a 4-plane heterogeneous P-Net, inspect the host stack,
//! pick paths under different policies, and run a small packet simulation.
//!
//! Run with: `cargo run --release --example quickstart`

use pnet::core::{HostStack, PNetSpec, PathPolicy, TopologyKind, TrafficClass};
use pnet::htsim::{run_to_completion, FlowSpec, SimConfig, Simulator};
use pnet::topology::{HostId, NetworkClass, PlaneId};

fn main() {
    // 1. Build a 4-plane heterogeneous P-Net: four differently-seeded
    //    Jellyfish planes over 32 racks with 2 hosts each.
    let spec = PNetSpec::new(
        TopologyKind::Jellyfish {
            n_tors: 32,
            degree: 5,
            hosts_per_tor: 2,
        },
        NetworkClass::ParallelHeterogeneous,
        4,
        42,
    );
    let pnet = spec.build();
    println!(
        "built {:?}: {} hosts, {} planes, {} switches",
        spec.class,
        pnet.net.n_hosts(),
        pnet.net.n_planes(),
        pnet.net.nodes().filter(|(_, n)| n.kind.is_switch()).count(),
    );

    // 2. The host stack: one IP-like address per plane, live-plane tracking.
    let stack = HostStack::new(&pnet.net, HostId(0));
    println!(
        "host 0 addresses: {:?}",
        stack
            .addrs()
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
    );
    println!("host 0 live planes: {:?}", stack.live_planes());

    // 3. Path selection through the pseudo interfaces.
    let src = HostId(0);
    let dst = HostId(63);
    for class in [TrafficClass::LowLatency, TrafficClass::HighThroughput] {
        let mut selector = pnet.selector(class.policy(4));
        let (routes, cc) = selector.select(&pnet.net, src, dst, 1, 1_000_000);
        let hops: Vec<usize> = routes.iter().map(|r| r.len() - 1).collect();
        let planes: Vec<PlaneId> = routes.iter().map(|r| pnet.net.link(r[0]).plane).collect();
        println!(
            "{class:?}: {} subflow(s), cc {cc:?}, switch hops {hops:?}, planes {planes:?}",
            routes.len(),
        );
    }

    // 4. A small packet simulation: one 1 MB transfer under the paper's
    //    default policy (small flows single path, big flows MPTCP).
    let mut selector = pnet.selector(PathPolicy::paper_default(32));
    let (routes, cc) = selector.select(&pnet.net, src, dst, 2, 1_000_000);
    let mut sim = Simulator::new(&pnet.net, SimConfig::default());
    sim.start_flow(FlowSpec {
        src,
        dst,
        size_bytes: 1_000_000,
        routes,
        cc,
        owner_tag: 0,
    });
    run_to_completion(&mut sim);
    let rec = &sim.records[0];
    println!(
        "1 MB transfer: fct {}, {} retransmits, {} switch hops min",
        rec.fct(),
        rec.retransmits,
        rec.min_switch_hops
    );
}
