//! Capacity planning as a service: the planner answers the paper's
//! section 5.1.1 what-if questions — can the fabric admit this matrix,
//! what subflow fan-out extracts the most capacity, and how much ideal
//! throughput survives a failure — against epoch-snapshotted fabric
//! generations, memoizing every solve. This example is a thin client: all
//! solver plumbing (routers, path tables, GK options) lives behind
//! [`pnet::planner::Planner`].
//!
//! Run with: `cargo run --release --example throughput_planner`

use pnet::flowsim::commodity;
use pnet::planner::{Planner, PlannerConfig};
use pnet::topology::{assemble_homogeneous, failures, FatTree, LinkProfile};
use pnet::workloads::tm;

fn main() {
    let ft = FatTree::three_tier(8); // 128 hosts
    let base = LinkProfile::paper_default();
    let hosts = ft.n_hosts();
    let perm = commodity::permutation(&tm::random_permutation(hosts, 11));

    println!("permutation traffic on a k=8 fat tree, {hosts} hosts");
    println!("(planner admission queries; links 100G/plane)\n");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>14}",
        "network", "ECMP-ish K=1", "KSP K=8", "KSP K=32", "K32/K1"
    );
    for n_planes in [1usize, 2, 4] {
        let net = assemble_homogeneous(&ft, n_planes, &base);
        let planner = Planner::with_config(
            net,
            PlannerConfig {
                k: 32,
                ..PlannerConfig::default()
            },
        );
        // One sweep answers all three columns; every (K, matrix) pair is
        // one memoized GK solve on the shared generation-0 snapshot.
        let sweep = planner
            .best_k(&perm, &[1, 8, 32])
            .expect("permutation matrices are solvable");
        let tbps: Vec<f64> = sweep
            .evaluated
            .iter()
            .map(|&(_, lambda)| lambda * perm.len() as f64 / 1e12)
            .collect();
        let label = if n_planes == 1 {
            "serial".to_string()
        } else {
            format!("parallel {n_planes}x")
        };
        println!(
            "{:<14} {:>10.2}Tb {:>10.2}Tb {:>10.2}Tb {:>13.1}x",
            label,
            tbps[0],
            tbps[1],
            tbps[2],
            tbps[2] / tbps[0]
        );
        if n_planes == 4 {
            // Failure what-if on the same pinned snapshot: ideal capacity
            // retained with two fabric cables down.
            let gen0 = planner.latest();
            let cables = failures::fabric_cables(gen0.network(), None);
            let wi = planner
                .ideal_throughput_after_at(&gen0, &cables[..2], &perm)
                .expect("what-if matrices are solvable");
            let stats = planner.memo_stats();
            println!(
                "\n4x what-if: 2 fabric cables down retains {:.1}% of ideal \
                 capacity\n(planner ran {} GK solves for {} queries; {} cache hits)",
                wi.retained() * 100.0,
                stats.misses,
                stats.misses + stats.hits,
                stats.hits
            );
        }
    }
    println!();
    println!("takeaway (paper section 4): single-path routing cannot exploit parallel");
    println!("planes on sparse traffic; MPTCP+KSP with K ~ 8N subflows can.");
}
