//! Capacity planning with the flow-level solver: how much of a P-Net's
//! physical capacity does a workload extract under different routing
//! configurations? A miniature of the paper's section 5.1.1 study.
//!
//! Run with: `cargo run --release --example throughput_planner`

use pnet::flowsim::{commodity, throughput};
use pnet::topology::{assemble_homogeneous, FatTree, LinkProfile};
use pnet::workloads::tm;

fn main() {
    let ft = FatTree::three_tier(8); // 128 hosts
    let base = LinkProfile::paper_default();
    let hosts = ft.n_hosts();
    let perm = commodity::permutation(&tm::random_permutation(hosts, 11));

    println!("permutation traffic on a k=8 fat tree, {} hosts", hosts);
    println!("(total delivered Tb/s under different routing; links 100G/plane)\n");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>14}",
        "network", "ECMP", "KSP K=8", "KSP K=32", "KSP32/ECMP"
    );
    for n_planes in [1usize, 2, 4] {
        let net = assemble_homogeneous(&ft, n_planes, &base);
        let ecmp = throughput::ecmp_throughput(&net, &perm) / 1e12;
        let (k8, _) = throughput::ksp_multipath_throughput(&net, &perm, 8, 0.1);
        let (k32, _) = throughput::ksp_multipath_throughput(&net, &perm, 32, 0.1);
        let label = if n_planes == 1 {
            "serial".to_string()
        } else {
            format!("parallel {n_planes}x")
        };
        println!(
            "{:<14} {:>10.2}Tb {:>10.2}Tb {:>10.2}Tb {:>13.1}x",
            label,
            ecmp,
            k8 / 1e12,
            k32 / 1e12,
            k32 / 1e12 / ecmp
        );
    }
    println!();
    println!("takeaway (paper section 4): single-path ECMP cannot exploit parallel");
    println!("planes on sparse traffic; MPTCP+KSP with K ~ 8N subflows can.");
}
