//! RPC latency across the four network classes — a miniature of the paper's
//! section 5.2.1 / Table 2 result: heterogeneous P-Nets complete MTU-sized
//! RPCs faster because another plane often has a shorter path.
//!
//! Run with: `cargo run --release --example rpc_latency`

use pnet::core::{PNetSpec, PathPolicy, TopologyKind};
use pnet::htsim::apps::{RpcDriver, RpcSlot};
use pnet::htsim::{metrics, run, SimConfig, Simulator};
use pnet::topology::{HostId, NetworkClass};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let topology = TopologyKind::Jellyfish {
        n_tors: 24,
        degree: 5,
        hosts_per_tor: 4,
    };
    let planes = 4;

    println!("1500B ping-pong RPCs, 30 rounds per host, single-path routing\n");
    println!(
        "{:<24} {:>10} {:>10} {:>10}",
        "network", "median", "mean", "p99"
    );

    let mut baseline = None;
    for class in NetworkClass::all() {
        let pnet = PNetSpec::new(topology, class, planes, 7).build();
        let n_hosts = pnet.net.n_hosts() as u32;
        // Serial & hetero: shortest plane; homogeneous: ECMP hash.
        let policy = match class {
            NetworkClass::ParallelHomogeneous => PathPolicy::EcmpHash,
            _ => PathPolicy::ShortestPlane,
        };
        let mut selector = pnet.selector(policy);
        let net = &pnet.net;
        let mut flow = 0u64;
        let factory = Box::new(move |src, dst, size| {
            flow += 1;
            selector.select(net, src, dst, flow, size)
        });

        let mut sim = Simulator::new(&pnet.net, SimConfig::default());
        let mut rng = StdRng::seed_from_u64(99);
        let slots: Vec<RpcSlot> = (0..n_hosts)
            .map(|h| {
                let mut r = StdRng::seed_from_u64(rng.random());
                RpcSlot {
                    client: HostId(h),
                    next_server: Box::new(move || loop {
                        let s = r.random_range(0..n_hosts);
                        if s != h {
                            return HostId(s);
                        }
                    }),
                }
            })
            .collect();
        let mut driver = RpcDriver::start(&mut sim, slots, factory, 1500, 1500, 30);
        run(&mut sim, &mut driver, None);
        let s = metrics::Summary::of(&driver.round_times_us);
        let base = *baseline.get_or_insert(s.median);
        println!(
            "{:<24} {:>8.2}us {:>8.2}us {:>8.2}us   ({:.1}% of serial-low median)",
            class.label(),
            s.median,
            s.mean,
            s.p99,
            100.0 * s.median / base
        );
    }
    println!("\npaper Table 2: parallel heterogeneous at ~80% of serial low-bw median");
}
