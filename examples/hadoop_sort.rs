//! A Hadoop-style sort job on a P-Net versus a serial network — a
//! miniature of the paper's section 5.2.2 shuffle study.
//!
//! Run with: `cargo run --release --example hadoop_sort`

use pnet::core::{PNetSpec, PathPolicy, TopologyKind};
use pnet::htsim::apps::{ShuffleDriver, Stage, Transfer};
use pnet::htsim::{metrics, run, SimConfig, Simulator};
use pnet::topology::{HostId, NetworkClass};
use pnet::workloads::SortJob;

fn main() {
    let topology = TopologyKind::Jellyfish {
        n_tors: 20,
        degree: 5,
        hosts_per_tor: 4,
    };
    // A scaled-down sort: 512 MB over 8 mappers and 8 reducers in 8 MB
    // blocks, 4 concurrent blocks per worker (the paper's concurrency).
    let job = SortJob {
        n_hosts: 80,
        n_mappers: 8,
        n_reducers: 8,
        total_bytes: 512_000_000,
        block_bytes: 8_000_000,
        concurrency: 4,
        seed: 3,
    };
    let (_, stages) = job.stages();
    println!(
        "sort job: {} MB total, stages: {:?}\n",
        job.total_bytes / 1_000_000,
        stages
            .iter()
            .map(|s| (s.name, s.transfers.len()))
            .collect::<Vec<_>>()
    );

    for class in [
        NetworkClass::SerialLow,
        NetworkClass::ParallelHeterogeneous,
        NetworkClass::SerialHigh,
    ] {
        let pnet = PNetSpec::new(topology, class, 4, 5).build();
        let mut selector = pnet.selector(PathPolicy::ShortestPlane);
        let net = &pnet.net;
        let mut flow = 0u64;
        let factory = Box::new(move |src, dst, size| {
            flow += 1;
            selector.select(net, src, dst, flow, size)
        });
        let sim_stages: Vec<Stage> = stages
            .iter()
            .map(|s| Stage {
                name: s.name.to_string(),
                transfers: s
                    .transfers
                    .iter()
                    .map(|t| Transfer {
                        src: HostId(t.src as u32),
                        dst: HostId(t.dst as u32),
                        size_bytes: t.size_bytes,
                        worker: t.worker,
                    })
                    .collect(),
            })
            .collect();
        let mut sim = Simulator::new(&pnet.net, SimConfig::default());
        let mut driver = ShuffleDriver::start(
            &mut sim,
            sim_stages,
            factory,
            job.concurrency,
            job.n_workers(),
        );
        run(&mut sim, &mut driver, None);
        assert!(driver.done());

        println!("{}:", class.label());
        for (si, name) in ["read input", "shuffle", "write output"].iter().enumerate() {
            let ms: Vec<f64> = driver.results[si]
                .iter()
                .filter(|&&t| t > 0.0)
                .map(|t| t / 1e3)
                .collect();
            let s = metrics::Summary::of(&ms);
            println!(
                "  {name:<13} worker completion: median {:>8.2}ms  p90 {:>8.2}ms  max {:>8.2}ms",
                s.median, s.p90, s.max
            );
        }
        println!();
    }
    println!("paper: parallel helps most in the sparse read/write stages;");
    println!("       the dense shuffle approaches serial high-bw behaviour");
}
