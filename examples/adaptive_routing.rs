//! Adaptive plane selection: a host learns from flow-completion feedback
//! which plane is congested and steers around it (the paper's section 3.4
//! pointer to DARD-style end-host routing).
//!
//! Run with: `cargo run --release --example adaptive_routing`

use pnet::core::adaptive::{ideal_fct_us, AdaptiveBalancer};
use pnet::core::{PNetSpec, PathPolicy, TopologyKind};
use pnet::htsim::{run, Driver, FlowRecord, FlowSpec, NullDriver, SimConfig, SimTime, Simulator};
use pnet::routing::{host_route, RouteAlgo, Router};
use pnet::topology::{HostId, NetworkClass, PlaneId};

const FLOW_BYTES: u64 = 150_000;

struct Learner<'a> {
    net: &'a pnet::topology::Network,
    router: Router,
    balancer: AdaptiveBalancer,
    launched: u64,
    per_plane: Vec<u32>,
    fcts: Vec<f64>,
    plane_of: std::collections::HashMap<u64, PlaneId>,
}

impl Learner<'_> {
    fn launch(&mut self, sim: &mut Simulator) {
        let tag = self.launched;
        self.launched += 1;
        let usable: Vec<PlaneId> = self.net.planes().collect();
        let plane = self.balancer.choose(&usable);
        self.per_plane[plane.index()] += 1;
        let (src, dst) = (HostId(0), HostId(30));
        let path = self.router.paths_in_plane(
            plane,
            self.net.rack_of_host(src),
            self.net.rack_of_host(dst),
        )[0]
        .clone();
        let route = host_route(self.net, src, dst, &path).unwrap();
        self.plane_of.insert(tag, plane);
        sim.start_flow(FlowSpec {
            src,
            dst,
            size_bytes: FLOW_BYTES,
            routes: vec![route],
            cc: pnet::htsim::CcAlgo::Reno,
            owner_tag: tag,
        });
    }
}

impl Driver for Learner<'_> {
    fn on_app_timer(&mut self, sim: &mut Simulator, _app: u32, _tag: u64) {
        if self.launched < 80 {
            self.launch(sim);
            let next = sim.now + SimTime::from_us(50);
            sim.schedule_app(next, 0, 0);
        }
    }
    fn on_flow_complete(&mut self, _sim: &mut Simulator, rec: &FlowRecord) {
        if rec.owner_tag == u64::MAX {
            return;
        }
        let plane = self.plane_of[&rec.owner_tag];
        let fct = rec.fct().as_us_f64();
        self.fcts.push(fct);
        self.balancer
            .report(plane, fct / ideal_fct_us(FLOW_BYTES, 100_000_000_000));
    }
}

fn main() {
    let pnet = PNetSpec::new(
        TopologyKind::Jellyfish {
            n_tors: 16,
            degree: 4,
            hosts_per_tor: 2,
        },
        NetworkClass::ParallelHomogeneous,
        4,
        11,
    )
    .build();
    let mut sim = Simulator::new(&pnet.net, SimConfig::default());

    // Congest plane 0 with background bulk.
    let mut bulk = pnet.selector(PathPolicy::Pinned {
        planes: vec![0],
        inner: Box::new(PathPolicy::EcmpHash),
    });
    for (i, (a, b)) in [(2u32, 29u32), (3, 28), (5, 27), (6, 26)]
        .iter()
        .enumerate()
    {
        let (routes, cc) = bulk.select(&pnet.net, HostId(*a), HostId(*b), i as u64, 80_000_000);
        sim.start_flow(FlowSpec {
            src: HostId(*a),
            dst: HostId(*b),
            size_bytes: 80_000_000,
            routes,
            cc,
            owner_tag: u64::MAX,
        });
    }

    let mut learner = Learner {
        net: &pnet.net,
        router: Router::new(&pnet.net, RouteAlgo::Ksp { k: 2 }),
        balancer: AdaptiveBalancer::new(4, 0.4, 16),
        launched: 0,
        per_plane: vec![0; 4],
        fcts: Vec::new(),
        plane_of: Default::default(),
    };
    sim.schedule_app(SimTime::from_us(10), 0, 0);
    run(&mut sim, &mut learner, Some(SimTime::from_ms(30)));
    run(&mut sim, &mut NullDriver, Some(SimTime::from_ms(60)));

    println!("plane 0 carries heavy background bulk; 80 small flows placed adaptively\n");
    println!(
        "flows per plane: {:?}  (plane 0 is congested)",
        learner.per_plane
    );
    let median = |v: &[f64]| pnet::htsim::metrics::percentile(v, 50.0);
    let early = &learner.fcts[..learner.fcts.len() / 4];
    let late = &learner.fcts[3 * learner.fcts.len() / 4..];
    println!(
        "median FCT, first quarter (learning): {:>8.1} us",
        median(early)
    );
    println!(
        "median FCT, last quarter (steady):    {:>8.1} us",
        median(late)
    );
    println!("(occasional slow flows are the balancer probing the congested plane)");
    println!("\nthe balancer's EWMA steers traffic off plane 0 after a handful of");
    println!("slow completions — no switch support needed, exactly the paper's");
    println!("end-host routing argument.");
}
